// Unit tests for embedding validation and the VF2 subgraph-monomorphism
// search used to realize SE_h ⊆ B_{2,h}.
#include <gtest/gtest.h>

#include "graph/embedding.hpp"
#include "graph/graph.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb {
namespace {

Graph cycle_graph(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return b.build();
}

TEST(IsValidEmbedding, IdentityOnSubgraph) {
  Graph pattern = make_graph(3, {{0, 1}, {1, 2}});
  Graph host = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(is_valid_embedding(pattern, host, {0, 1, 2}));
}

TEST(IsValidEmbedding, RejectsNonInjective) {
  Graph pattern = make_graph(2, {{0, 1}});
  Graph host = make_graph(3, {{0, 1}});
  EXPECT_FALSE(is_valid_embedding(pattern, host, {0, 0}));
}

TEST(IsValidEmbedding, RejectsMissingEdge) {
  Graph pattern = make_graph(2, {{0, 1}});
  Graph host = make_graph(3, {{0, 1}});
  EXPECT_FALSE(is_valid_embedding(pattern, host, {0, 2}));
}

TEST(IsValidEmbedding, RejectsWrongSize) {
  Graph pattern = make_graph(2, {{0, 1}});
  Graph host = make_graph(3, {{0, 1}});
  EXPECT_FALSE(is_valid_embedding(pattern, host, {0}));
}

TEST(IsValidEmbedding, RejectsOutOfRangeImage) {
  Graph pattern = make_graph(1, {});
  Graph host = make_graph(1, {});
  EXPECT_FALSE(is_valid_embedding(pattern, host, {5}));
}

TEST(FindSubgraphEmbedding, TriangleInK4) {
  Graph triangle = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  Graph k4 = make_graph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  auto phi = find_subgraph_embedding(triangle, k4);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(is_valid_embedding(triangle, k4, *phi));
}

TEST(FindSubgraphEmbedding, TriangleNotInBipartite) {
  Graph triangle = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  Graph square = cycle_graph(4);
  EXPECT_FALSE(find_subgraph_embedding(triangle, square).has_value());
}

TEST(FindSubgraphEmbedding, PatternLargerThanHost) {
  Graph big = cycle_graph(5);
  Graph small = cycle_graph(4);
  EXPECT_FALSE(find_subgraph_embedding(big, small).has_value());
}

TEST(FindSubgraphEmbedding, EmptyPattern) {
  Graph empty = make_graph(0, {});
  Graph host = cycle_graph(3);
  auto phi = find_subgraph_embedding(empty, host);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(phi->empty());
}

TEST(FindSubgraphEmbedding, DisconnectedPattern) {
  Graph pattern = make_graph(4, {{0, 1}, {2, 3}});
  Graph host = cycle_graph(6);
  auto phi = find_subgraph_embedding(pattern, host);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(is_valid_embedding(pattern, host, *phi));
}

TEST(FindSubgraphEmbedding, HamiltonianCycleInHypercube) {
  // Q_3 is Hamiltonian: C_8 embeds.
  auto phi = find_subgraph_embedding(cycle_graph(8), hypercube_graph(3));
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(is_valid_embedding(cycle_graph(8), hypercube_graph(3), *phi));
}

TEST(FindSubgraphEmbedding, OddCycleNotInHypercube) {
  // Q_4 is bipartite, so C_7 cannot embed.
  EXPECT_FALSE(find_subgraph_embedding(cycle_graph(7), hypercube_graph(4)).has_value());
}

TEST(FindSubgraphEmbedding, StepBudgetAborts) {
  // An infeasible dense-in-sparse search with a tiny budget reports abort.
  Graph pattern = make_graph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5},
                                 {1, 2}, {1, 3}, {1, 4}, {1, 5},
                                 {2, 3}, {2, 4}, {2, 5}, {3, 4}, {3, 5}, {4, 5}});
  Graph host = hypercube_graph(5);
  EmbeddingSearchOptions options;
  options.max_steps = 10;
  EmbeddingSearchStats stats;
  auto phi = find_subgraph_embedding(pattern, host, options, &stats);
  EXPECT_FALSE(phi.has_value());
  EXPECT_TRUE(stats.aborted || stats.steps <= 10);
}

TEST(Compose, AppliesInOrder) {
  Embedding f{2, 0, 1};
  Embedding g{10, 11, 12};
  EXPECT_EQ(compose(f, g), (Embedding{12, 10, 11}));
}

TEST(IdentityEmbedding, IsIdentity) {
  auto id = identity_embedding(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(id[i], i);
}

// The containment the paper's fault-tolerant shuffle-exchange rests on
// (Feldmann/Unger [7]): SE_h is a subgraph of B_{2,h} of the same size.
class SeInDeBruijnTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SeInDeBruijnTest, ShuffleExchangeEmbedsInDeBruijn) {
  const unsigned h = GetParam();
  const Graph se = shuffle_exchange_graph(h);
  const Graph db = debruijn_base2(h);
  ASSERT_EQ(se.num_nodes(), db.num_nodes());
  auto phi = find_subgraph_embedding(se, db);
  ASSERT_TRUE(phi.has_value()) << "no embedding found for h=" << h;
  EXPECT_TRUE(is_valid_embedding(se, db, *phi));
}

INSTANTIATE_TEST_SUITE_P(SmallH, SeInDeBruijnTest, ::testing::Values(3, 4, 5));

}  // namespace
}  // namespace ftdb
