// Unit tests for embedding validation and the VF2 subgraph-monomorphism
// search used to realize SE_h ⊆ B_{2,h}.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/embedding.hpp"
#include "graph/graph.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb {
namespace {

Graph cycle_graph(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return b.build();
}

TEST(IsValidEmbedding, IdentityOnSubgraph) {
  Graph pattern = make_graph(3, {{0, 1}, {1, 2}});
  Graph host = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(is_valid_embedding(pattern, host, {0, 1, 2}));
}

TEST(IsValidEmbedding, RejectsNonInjective) {
  Graph pattern = make_graph(2, {{0, 1}});
  Graph host = make_graph(3, {{0, 1}});
  EXPECT_FALSE(is_valid_embedding(pattern, host, {0, 0}));
}

TEST(IsValidEmbedding, RejectsMissingEdge) {
  Graph pattern = make_graph(2, {{0, 1}});
  Graph host = make_graph(3, {{0, 1}});
  EXPECT_FALSE(is_valid_embedding(pattern, host, {0, 2}));
}

TEST(IsValidEmbedding, RejectsWrongSize) {
  Graph pattern = make_graph(2, {{0, 1}});
  Graph host = make_graph(3, {{0, 1}});
  EXPECT_FALSE(is_valid_embedding(pattern, host, {0}));
}

TEST(IsValidEmbedding, RejectsOutOfRangeImage) {
  Graph pattern = make_graph(1, {});
  Graph host = make_graph(1, {});
  EXPECT_FALSE(is_valid_embedding(pattern, host, {5}));
}

TEST(FindSubgraphEmbedding, TriangleInK4) {
  Graph triangle = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  Graph k4 = make_graph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  auto phi = find_subgraph_embedding(triangle, k4);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(is_valid_embedding(triangle, k4, *phi));
}

TEST(FindSubgraphEmbedding, TriangleNotInBipartite) {
  Graph triangle = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  Graph square = cycle_graph(4);
  EXPECT_FALSE(find_subgraph_embedding(triangle, square).has_value());
}

TEST(FindSubgraphEmbedding, PatternLargerThanHost) {
  Graph big = cycle_graph(5);
  Graph small = cycle_graph(4);
  EXPECT_FALSE(find_subgraph_embedding(big, small).has_value());
}

TEST(FindSubgraphEmbedding, EmptyPattern) {
  Graph empty = make_graph(0, {});
  Graph host = cycle_graph(3);
  auto phi = find_subgraph_embedding(empty, host);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(phi->empty());
}

TEST(FindSubgraphEmbedding, DisconnectedPattern) {
  Graph pattern = make_graph(4, {{0, 1}, {2, 3}});
  Graph host = cycle_graph(6);
  auto phi = find_subgraph_embedding(pattern, host);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(is_valid_embedding(pattern, host, *phi));
}

TEST(FindSubgraphEmbedding, HamiltonianCycleInHypercube) {
  // Q_3 is Hamiltonian: C_8 embeds.
  auto phi = find_subgraph_embedding(cycle_graph(8), hypercube_graph(3));
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(is_valid_embedding(cycle_graph(8), hypercube_graph(3), *phi));
}

TEST(FindSubgraphEmbedding, OddCycleNotInHypercube) {
  // Q_4 is bipartite, so C_7 cannot embed.
  EXPECT_FALSE(find_subgraph_embedding(cycle_graph(7), hypercube_graph(4)).has_value());
}

TEST(FindSubgraphEmbedding, StepBudgetAborts) {
  // An infeasible dense-in-sparse search with a tiny budget reports abort.
  Graph pattern = make_graph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5},
                                 {1, 2}, {1, 3}, {1, 4}, {1, 5},
                                 {2, 3}, {2, 4}, {2, 5}, {3, 4}, {3, 5}, {4, 5}});
  Graph host = hypercube_graph(5);
  EmbeddingSearchOptions options;
  options.max_steps = 10;
  EmbeddingSearchStats stats;
  auto phi = find_subgraph_embedding(pattern, host, options, &stats);
  EXPECT_FALSE(phi.has_value());
  EXPECT_TRUE(stats.aborted || stats.steps <= 10);
}

TEST(Compose, AppliesInOrder) {
  Embedding f{2, 0, 1};
  Embedding g{10, 11, 12};
  EXPECT_EQ(compose(f, g), (Embedding{12, 10, 11}));
}

TEST(IdentityEmbedding, IsIdentity) {
  auto id = identity_embedding(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(id[i], i);
}

// The containment the paper's fault-tolerant shuffle-exchange rests on
// (Feldmann/Unger [7]): SE_h is a subgraph of B_{2,h} of the same size.
class SeInDeBruijnTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SeInDeBruijnTest, ShuffleExchangeEmbedsInDeBruijn) {
  const unsigned h = GetParam();
  const Graph se = shuffle_exchange_graph(h);
  const Graph db = debruijn_base2(h);
  ASSERT_EQ(se.num_nodes(), db.num_nodes());
  auto phi = find_subgraph_embedding(se, db);
  ASSERT_TRUE(phi.has_value()) << "no embedding found for h=" << h;
  EXPECT_TRUE(is_valid_embedding(se, db, *phi));
}

INSTANTIATE_TEST_SUITE_P(SmallH, SeInDeBruijnTest, ::testing::Values(3, 4, 5));

// --- pruned search vs the unpruned reference oracle --------------------------

TEST(PrunedEmbedding, MatchesTheReferenceOnMixedSmallInstances) {
  // The pruned search tries assignments in the same order as the reference,
  // and every filter is a necessary condition — so both must return the
  // *identical* embedding (or both nullopt), not merely equivalent ones.
  const Graph triangle = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  const Graph k4 = make_graph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  const std::vector<std::pair<Graph, Graph>> cases = {
      {triangle, k4},
      {triangle, cycle_graph(4)},             // infeasible: bipartite host
      {cycle_graph(8), hypercube_graph(3)},   // Hamiltonian cycle
      {cycle_graph(7), hypercube_graph(4)},   // infeasible: odd cycle
      {make_graph(4, {{0, 1}, {2, 3}}), cycle_graph(6)},  // disconnected pattern
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& [pattern, host] = cases[i];
    const auto pruned = find_subgraph_embedding(pattern, host);
    const auto reference = find_subgraph_embedding_reference(pattern, host);
    ASSERT_EQ(pruned.has_value(), reference.has_value()) << "case " << i;
    if (pruned.has_value()) EXPECT_EQ(*pruned, *reference) << "case " << i;
  }
}

TEST(PrunedEmbedding, MatchesTheReferenceOnTheShuffleExchangeGrid) {
  for (unsigned h : {3u, 4u, 5u}) {
    const Graph se = shuffle_exchange_graph(h);
    const Graph db = debruijn_base2(h);
    EmbeddingSearchStats pruned_stats, ref_stats;
    const auto pruned = find_subgraph_embedding(se, db, {}, &pruned_stats);
    const auto reference = find_subgraph_embedding_reference(se, db, {}, &ref_stats);
    ASSERT_TRUE(pruned.has_value()) << "h=" << h;
    ASSERT_TRUE(reference.has_value()) << "h=" << h;
    EXPECT_EQ(*pruned, *reference) << "h=" << h;
    EXPECT_FALSE(pruned_stats.aborted);
    // The filters only ever discard work: the pruned search must not take
    // more candidate-pair steps than the oracle it replaces.
    EXPECT_LE(pruned_stats.steps, ref_stats.steps) << "h=" << h;
  }
}

TEST(PrunedEmbedding, SolvesSeSixWithinTheStepBudget) {
  // SE_6 into B_{2,6} (64 nodes) is what the pruning buys: the candidate
  // filters keep the search well under a ceiling an order of magnitude below
  // the default 50M budget. (Measured ~585k steps; the margin guards against
  // regressing the filters, not against host-machine noise — step counts are
  // deterministic.)
  const Graph se = shuffle_exchange_graph(6);
  const Graph db = debruijn_base2(6);
  EmbeddingSearchOptions options;
  options.max_steps = 5'000'000;
  EmbeddingSearchStats stats;
  const auto phi = find_subgraph_embedding(se, db, options, &stats);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(is_valid_embedding(se, db, *phi));
  EXPECT_FALSE(stats.aborted);
  EXPECT_LE(stats.steps, options.max_steps);
}

TEST(PrunedEmbedding, ReferenceHonorsItsStepBudget) {
  // The retained oracle keeps the same abort contract as the pruned search.
  const Graph se = shuffle_exchange_graph(5);
  const Graph db = debruijn_base2(5);
  EmbeddingSearchOptions options;
  options.max_steps = 50;
  EmbeddingSearchStats stats;
  const auto phi = find_subgraph_embedding_reference(se, db, options, &stats);
  EXPECT_FALSE(phi.has_value());
  EXPECT_TRUE(stats.aborted);
}

}  // namespace
}  // namespace ftdb
