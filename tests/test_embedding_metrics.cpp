// Tests for embedding quality metrics (dilation / congestion / expansion).
#include <gtest/gtest.h>

#include <random>

#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "ft/reconfigure.hpp"
#include "graph/embedding_metrics.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb {
namespace {

TEST(MeasureEmbedding, IdentityOnSameGraph) {
  const Graph g = debruijn_base2(3);
  const auto metrics = measure_embedding(g, g, identity_embedding(g.num_nodes()));
  EXPECT_EQ(metrics.dilation, 1u);
  EXPECT_EQ(metrics.congestion, 1u);
  EXPECT_DOUBLE_EQ(metrics.expansion, 1.0);
  EXPECT_EQ(metrics.broken_edges, 0u);
  EXPECT_DOUBLE_EQ(metrics.average_dilation, 1.0);
}

TEST(MeasureEmbedding, RejectsNonInjective) {
  const Graph g = make_graph(2, {{0, 1}});
  EXPECT_THROW(measure_embedding(g, g, Embedding{0, 0}), std::invalid_argument);
  EXPECT_THROW(measure_embedding(g, g, Embedding{0}), std::invalid_argument);
  EXPECT_THROW(measure_embedding(g, g, Embedding{0, 5}), std::invalid_argument);
}

TEST(MeasureEmbedding, StretchedPath) {
  // Pattern edge (0,1) hosted at opposite ends of a 4-path: dilation 3.
  const Graph pattern = make_graph(2, {{0, 1}});
  const Graph host = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto metrics = measure_embedding(pattern, host, Embedding{0, 3});
  EXPECT_EQ(metrics.dilation, 3u);
  EXPECT_EQ(metrics.congestion, 1u);
  EXPECT_DOUBLE_EQ(metrics.expansion, 2.0);
}

TEST(MeasureEmbedding, BrokenEdgeCounted) {
  const Graph pattern = make_graph(2, {{0, 1}});
  const Graph host = make_graph(3, {{0, 1}});  // node 2 isolated
  const auto metrics = measure_embedding(pattern, host, Embedding{0, 2});
  EXPECT_EQ(metrics.broken_edges, 1u);
  EXPECT_EQ(metrics.dilation, 0u);
}

TEST(MeasureEmbedding, CongestionOnSharedHostEdge) {
  // Two pattern edges forced over the single host bridge 1-2.
  const Graph pattern = make_graph(4, {{0, 2}, {1, 3}});
  GraphBuilder b(6);
  // Two stars joined by a bridge: 0,1 attach to 4; 2,3 attach to 5; 4-5 bridge.
  b.add_edge(0, 4);
  b.add_edge(1, 4);
  b.add_edge(2, 5);
  b.add_edge(3, 5);
  b.add_edge(4, 5);
  const Graph host = b.build();
  const auto metrics = measure_embedding(pattern, host, Embedding{0, 1, 2, 3});
  EXPECT_EQ(metrics.dilation, 3u);    // 0-4-5-2
  EXPECT_EQ(metrics.congestion, 2u);  // both paths cross 4-5
}

TEST(MeasureEmbedding, ReconfigurationIsDilationOne) {
  // The paper's guarantee in metric form: the monotone embedding of the
  // target into the faulted FT graph has dilation 1 and congestion 1.
  const unsigned h = 5;
  const unsigned k = 3;
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const FaultSet faults = FaultSet::random(ft.num_nodes(), k, rng);
    const auto phi = monotone_embedding(faults);
    Embedding restricted(phi.begin(), phi.begin() + static_cast<std::ptrdiff_t>(target.num_nodes()));
    const auto metrics = measure_embedding(target, ft, restricted);
    EXPECT_EQ(metrics.dilation, 1u) << "trial " << trial;
    EXPECT_EQ(metrics.congestion, 1u);
    EXPECT_EQ(metrics.broken_edges, 0u);
  }
}

TEST(MeasureEmbedding, SeIntoDeBruijnIsDilationOne) {
  const unsigned h = 4;
  const auto sigma = find_se_in_debruijn(h);
  ASSERT_TRUE(sigma.has_value());
  const auto metrics =
      measure_embedding(shuffle_exchange_graph(h), debruijn_base2(h), *sigma);
  EXPECT_EQ(metrics.dilation, 1u);
  EXPECT_EQ(metrics.congestion, 1u);
  EXPECT_DOUBLE_EQ(metrics.expansion, 1.0);
}

TEST(MeasureEmbedding, NoSparesStrategyStretches) {
  // Contrast experiment: map the target monotonically into the *bare* target
  // with a fault (no spares, survivors only) — edges must stretch or break,
  // which is exactly why spares matter.
  const unsigned h = 4;
  const Graph target = debruijn_base2(h);
  // Remove node 5: embed the 15-node prefix of the target into survivors.
  // Build the "pattern" as the subgraph induced on the first 15 logical nodes.
  GraphBuilder pb(15);
  for (const Edge& e : target.edges()) {
    if (e.u < 15 && e.v < 15) pb.add_edge(e.u, e.v);
  }
  const Graph pattern = pb.build();
  // Monotone map into survivors of the faulted target.
  Embedding phi(15);
  for (NodeId x = 0; x < 15; ++x) phi[x] = x < 5 ? x : x + 1;
  const auto metrics = measure_embedding(pattern, target, phi);
  EXPECT_GT(metrics.dilation, 1u);  // some edge stretched
}

}  // namespace
}  // namespace ftdb
