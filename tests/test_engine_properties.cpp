// Property tests for the store-and-forward engine on random topologies and
// workloads: conservation, latency lower bounds, work bounds, and
// reconfiguration equivalence as a universally quantified property.
#include <gtest/gtest.h>

#include <random>

#include "ft/ft_debruijn.hpp"
#include "graph/algorithms.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"

namespace ftdb::sim {
namespace {

Graph random_connected_graph(std::size_t n, std::mt19937_64& rng) {
  GraphBuilder b(n);
  // Random spanning tree, then extra chords.
  for (std::size_t v = 1; v < n; ++v) {
    std::uniform_int_distribution<std::size_t> parent(0, v - 1);
    b.add_edge(static_cast<NodeId>(parent(rng)), static_cast<NodeId>(v));
  }
  std::uniform_int_distribution<std::size_t> any(0, n - 1);
  for (std::size_t extra = 0; extra < n; ++extra) {
    b.add_edge(static_cast<NodeId>(any(rng)), static_cast<NodeId>(any(rng)));
  }
  return b.build();
}

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperty, ConservationAndLatencyBounds) {
  std::mt19937_64 rng(GetParam());
  const std::size_t n = 8 + rng() % 40;
  const Graph g = random_connected_graph(n, rng);
  const Machine m = Machine::direct(g);
  const auto packets = uniform_traffic(n, 150, 3, GetParam() * 7 + 1);
  const SimStats stats = run_packets(m, g, packets);

  // Conservation: every packet is accounted for.
  EXPECT_EQ(stats.injected, packets.size());
  EXPECT_EQ(stats.delivered + stats.undeliverable, stats.injected);
  EXPECT_EQ(stats.undeliverable, 0u);  // connected machine

  // Work bound: total hops at least the sum of shortest distances.
  std::uint64_t lower = 0;
  for (const Packet& p : packets) {
    const auto dist = bfs_distances(g, p.src);
    lower += dist[p.dst];
  }
  EXPECT_GE(stats.total_hops, lower);

  // Latency bound: max latency at least the max shortest distance of any
  // packet, and cycles at least max latency... cycles count from time zero,
  // so cycles >= max inject + 1 hop for any non-self packet.
  EXPECT_LE(stats.throughput(), static_cast<double>(2 * g.num_edges()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class ReconfEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReconfEquivalence, AnyFaultSetAnyTrafficMatchesHealthyRun) {
  // Universal property: for random fault sets and random traffic, the
  // reconfigured FT machine's statistics equal the healthy target's.
  const unsigned h = 5;
  const unsigned k = 4;
  std::mt19937_64 rng(GetParam());
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);
  const auto packets = uniform_traffic(target.num_nodes(), 250, 4, GetParam());

  const SimStats healthy = run_packets(Machine::direct(target), target, packets);
  const FaultSet faults = FaultSet::random(ft.num_nodes(), k, rng);
  const SimStats reconf =
      run_packets(Machine::reconfigured(ft, faults, target.num_nodes()), target, packets);

  EXPECT_EQ(reconf.delivered, healthy.delivered);
  EXPECT_EQ(reconf.undeliverable, 0u);
  EXPECT_EQ(reconf.total_latency, healthy.total_latency);
  EXPECT_EQ(reconf.total_hops, healthy.total_hops);
  EXPECT_EQ(reconf.max_latency, healthy.max_latency);
  EXPECT_EQ(reconf.cycles, healthy.cycles);
  EXPECT_EQ(reconf.max_queue_depth, healthy.max_queue_depth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

TEST(EngineProperty, HeavierLoadNeverDecreasesCycles) {
  // Monotonicity sanity: adding packets to the same workload cannot finish
  // sooner.
  const Graph g = hypercube_graph(5);
  const Machine m = Machine::direct(g);
  const auto small = uniform_traffic(32, 100, 4, 9);
  auto big = small;
  const auto more = uniform_traffic(32, 100, 4, 10);
  for (const auto& p : more) big.push_back(p);
  const auto s1 = run_packets(m, g, small);
  const auto s2 = run_packets(m, g, big);
  EXPECT_GE(s2.cycles, s1.cycles);
  EXPECT_EQ(s2.delivered, 200u);
}

TEST(EngineProperty, SingleSourceFloodDrainsInDegreeBoundedTime) {
  // One node sends to everyone: the source's out-links are the bottleneck;
  // the run must take at least ceil((N-1)/deg(src)) cycles.
  const Graph g = debruijn_base2(5);
  const Machine m = Machine::direct(g);
  std::vector<Packet> packets;
  for (NodeId d = 1; d < 32; ++d) packets.push_back({d, 0, d, 0});
  const auto stats = run_packets(m, g, packets);
  EXPECT_EQ(stats.delivered, 31u);
  EXPECT_GE(stats.cycles, (31 + g.degree(0) - 1) / g.degree(0));
}

}  // namespace
}  // namespace ftdb::sim
