// Tests for the base-2 fault-tolerant de Bruijn construction B^k_{2,h}
// (Section III): structure, Corollaries 1-2, and Theorem 1 via exhaustive and
// Monte Carlo tolerance checks.
#include <gtest/gtest.h>

#include "ft/ft_debruijn.hpp"
#include "ft/tolerance.hpp"
#include "graph/algorithms.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

TEST(FtDeBruijn, NodeCountIsNPlusK) {
  EXPECT_EQ(ft_debruijn_num_nodes({.base = 2, .digits = 4, .spares = 1}), 17u);
  EXPECT_EQ(ft_debruijn_num_nodes({.base = 2, .digits = 5, .spares = 3}), 35u);
  EXPECT_EQ(ft_debruijn_num_nodes({.base = 3, .digits = 3, .spares = 2}), 29u);
}

TEST(FtDeBruijn, OffsetRangeBase2) {
  // r in {-k, ..., k+1} for m = 2.
  const auto range = ft_debruijn_offsets({.base = 2, .digits = 4, .spares = 3});
  EXPECT_EQ(range.lo, -3);
  EXPECT_EQ(range.hi, 4);
}

TEST(FtDeBruijn, ZeroSparesDegeneratesToTarget) {
  // B^0_{2,h} == B_{2,h}: same modulus, offsets {0, 1}.
  for (unsigned h = 3; h <= 6; ++h) {
    EXPECT_TRUE(ft_debruijn_base2(h, 0).same_structure(debruijn_base2(h))) << "h=" << h;
  }
}

TEST(FtDeBruijn, Fig2_B124Structure) {
  // Paper Fig. 2: B^1_{2,4} has 17 nodes and degree at most 8.
  Graph g = ft_debruijn_base2(4, 1);
  EXPECT_EQ(g.num_nodes(), 17u);
  EXPECT_LE(g.max_degree(), 8u);
  // Corollary 2 is tight here: some node attains degree 8.
  EXPECT_EQ(g.max_degree(), 8u);
}

TEST(FtDeBruijn, NodeConnectedToBlockOf2kPlus2) {
  // "each node is connected to a block of 2k+2 consecutive nodes": node x's
  // forward neighbors are (2x - k .. 2x + k + 1) mod (2^h + k).
  const unsigned h = 4;
  const unsigned k = 2;
  Graph g = ft_debruijn_base2(h, k);
  const std::int64_t s = 18;
  for (std::int64_t x = 0; x < s; ++x) {
    for (std::int64_t c = -static_cast<std::int64_t>(k); c <= k + 1; ++c) {
      const std::int64_t y = ((2 * x + c) % s + s) % s;
      if (y != x) {
        EXPECT_TRUE(g.has_edge(static_cast<NodeId>(x), static_cast<NodeId>(y)))
            << "x=" << x << " y=" << y;
      }
    }
  }
}

class FtDeBruijnDegree : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(FtDeBruijnDegree, Corollary1_DegreeAtMost4kPlus4) {
  const auto [h, k] = GetParam();
  Graph g = ft_debruijn_base2(h, k);
  EXPECT_LE(g.max_degree(), 4u * k + 4) << "h=" << h << " k=" << k;
}

TEST_P(FtDeBruijnDegree, Connected) {
  const auto [h, k] = GetParam();
  EXPECT_TRUE(is_connected(ft_debruijn_base2(h, k)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FtDeBruijnDegree,
                         ::testing::Values(std::pair<unsigned, unsigned>{3, 0},
                                           std::pair<unsigned, unsigned>{3, 1},
                                           std::pair<unsigned, unsigned>{3, 2},
                                           std::pair<unsigned, unsigned>{4, 1},
                                           std::pair<unsigned, unsigned>{4, 3},
                                           std::pair<unsigned, unsigned>{5, 2},
                                           std::pair<unsigned, unsigned>{6, 4},
                                           std::pair<unsigned, unsigned>{7, 5},
                                           std::pair<unsigned, unsigned>{8, 2}));

// Theorem 1 exhaustively: every fault set of size exactly k is tolerated.
class FtDeBruijnTolerance : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(FtDeBruijnTolerance, Theorem1_Exhaustive) {
  const auto [h, k] = GetParam();
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);
  const auto report = check_tolerance_exhaustive(target, ft, k);
  EXPECT_TRUE(report.tolerant)
      << "counterexample faults: "
      << ::testing::PrintToString(report.counterexample_faults) << " violating target edge ("
      << report.violated_edge.u << "," << report.violated_edge.v << ")";
  EXPECT_EQ(report.fault_sets_checked, binomial(ft.num_nodes(), k));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FtDeBruijnTolerance,
                         ::testing::Values(std::pair<unsigned, unsigned>{3, 1},
                                           std::pair<unsigned, unsigned>{3, 2},
                                           std::pair<unsigned, unsigned>{3, 3},
                                           std::pair<unsigned, unsigned>{4, 1},
                                           std::pair<unsigned, unsigned>{4, 2},
                                           std::pair<unsigned, unsigned>{5, 1},
                                           std::pair<unsigned, unsigned>{5, 2},
                                           std::pair<unsigned, unsigned>{6, 1}));

TEST(FtDeBruijn, Theorem1_SmallerFaultSetsAlsoTolerated) {
  // The paper removes exactly k nodes; fewer faults are also fine because the
  // same offsets absorb smaller deltas. check_all_sizes covers 0..k.
  const auto report =
      check_tolerance_exhaustive(debruijn_base2(4), ft_debruijn_base2(4, 2), 2, true);
  EXPECT_TRUE(report.tolerant);
}

TEST(FtDeBruijn, MonteCarloLargeInstances) {
  for (auto [h, k] : {std::pair<unsigned, unsigned>{8, 3}, {9, 2}, {10, 4}}) {
    const Graph target = debruijn_base2(h);
    const Graph ft = ft_debruijn_base2(h, k);
    const auto report = check_tolerance_monte_carlo(target, ft, k, 300, 99);
    EXPECT_TRUE(report.tolerant) << "h=" << h << " k=" << k;
  }
}

TEST(FtDeBruijn, TooManyFaultsCanBreak) {
  // k+1 faults must defeat some fault set (the construction is not (k+1)-
  // tolerant with only k spares: not enough survivors remain).
  const Graph target = debruijn_base2(3);
  const Graph ft = ft_debruijn_base2(3, 1);
  const auto report = check_tolerance_exhaustive(target, ft, 2);
  EXPECT_FALSE(report.tolerant);
}

TEST(FtDeBruijn, CustomOffsetsReproduceDefault) {
  const FtDeBruijnParams p{.base = 2, .digits = 4, .spares = 2};
  Graph a = ft_debruijn_graph(p);
  Graph b = ft_debruijn_graph_custom_offsets(2, 4, 2, ft_debruijn_offsets(p));
  EXPECT_TRUE(a.same_structure(b));
}

TEST(FtDeBruijn, AblationNarrowerOffsetsBreakTolerance) {
  // Shrinking the offset interval below the paper's range must break
  // Theorem 1 — evidence the edge set is not padded.
  const unsigned h = 4;
  const unsigned k = 2;
  const Graph target = debruijn_base2(h);
  Graph narrowed = ft_debruijn_graph_custom_offsets(2, h, k, OffsetRange{-(int)k + 1, (int)k + 1});
  const auto report = check_tolerance_exhaustive(target, narrowed, k);
  EXPECT_FALSE(report.tolerant);
}

TEST(FtDeBruijn, DegreeBoundFormula) {
  EXPECT_EQ(ft_debruijn_degree_bound({.base = 2, .digits = 5, .spares = 3}), 16u);
  EXPECT_EQ(ft_debruijn_degree_bound({.base = 3, .digits = 4, .spares = 2}), 22u);
  EXPECT_EQ(ft_debruijn_degree_bound({.base = 4, .digits = 3, .spares = 1}), 20u);
}

}  // namespace
}  // namespace ftdb
