// Tests for the base-m fault-tolerant de Bruijn construction B^k_{m,h}
// (Section IV): Theorem 2 and Corollaries 3-4.
#include <gtest/gtest.h>

#include "ft/ft_debruijn.hpp"
#include "ft/tolerance.hpp"
#include "graph/algorithms.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

struct BaseMCase {
  std::uint64_t m;
  unsigned h;
  unsigned k;
};

std::ostream& operator<<(std::ostream& os, const BaseMCase& c) {
  return os << "m=" << c.m << " h=" << c.h << " k=" << c.k;
}

TEST(FtDeBruijnBaseM, OffsetRange) {
  // r in { (m-1)(-k), ..., (m-1)(k+1) }.
  const auto range = ft_debruijn_offsets({.base = 4, .digits = 3, .spares = 2});
  EXPECT_EQ(range.lo, -6);
  EXPECT_EQ(range.hi, 9);
}

TEST(FtDeBruijnBaseM, ZeroSparesDegeneratesToTarget) {
  for (std::uint64_t m : {3ull, 4ull, 5ull}) {
    const Graph ft = ft_debruijn_graph({.base = m, .digits = 3, .spares = 0});
    const Graph target = debruijn_graph({.base = m, .digits = 3});
    EXPECT_TRUE(ft.same_structure(target)) << "m=" << m;
  }
}

class FtBaseMDegree : public ::testing::TestWithParam<BaseMCase> {};

TEST_P(FtBaseMDegree, Corollary3_DegreeBound) {
  const auto c = GetParam();
  const FtDeBruijnParams params{.base = c.m, .digits = c.h, .spares = c.k};
  const Graph g = ft_debruijn_graph(params);
  EXPECT_EQ(g.num_nodes(), ft_debruijn_num_nodes(params));
  EXPECT_LE(g.max_degree(), ft_debruijn_degree_bound(params)) << c;
}

TEST_P(FtBaseMDegree, Connected) {
  const auto c = GetParam();
  EXPECT_TRUE(is_connected(ft_debruijn_graph({.base = c.m, .digits = c.h, .spares = c.k})));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FtBaseMDegree,
                         ::testing::Values(BaseMCase{3, 3, 0}, BaseMCase{3, 3, 1},
                                           BaseMCase{3, 3, 2}, BaseMCase{3, 4, 2},
                                           BaseMCase{4, 3, 1}, BaseMCase{4, 3, 3},
                                           BaseMCase{5, 2, 1}, BaseMCase{5, 3, 2},
                                           BaseMCase{6, 2, 2}));

class FtBaseMTolerance : public ::testing::TestWithParam<BaseMCase> {};

TEST_P(FtBaseMTolerance, Theorem2_Exhaustive) {
  const auto c = GetParam();
  const Graph target = debruijn_graph({.base = c.m, .digits = c.h});
  const Graph ft = ft_debruijn_graph({.base = c.m, .digits = c.h, .spares = c.k});
  const auto report = check_tolerance_exhaustive(target, ft, c.k);
  EXPECT_TRUE(report.tolerant) << c << " counterexample: "
                               << ::testing::PrintToString(report.counterexample_faults);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FtBaseMTolerance,
                         ::testing::Values(BaseMCase{3, 3, 1}, BaseMCase{3, 3, 2},
                                           BaseMCase{4, 2, 1}, BaseMCase{4, 2, 2},
                                           BaseMCase{4, 3, 1}, BaseMCase{5, 2, 1},
                                           BaseMCase{5, 2, 2}, BaseMCase{6, 2, 1}));

TEST(FtDeBruijnBaseM, MonteCarloLargerInstances) {
  for (auto c : {BaseMCase{3, 5, 2}, BaseMCase{4, 4, 3}, BaseMCase{5, 3, 2}}) {
    const Graph target = debruijn_graph({.base = c.m, .digits = c.h});
    const Graph ft = ft_debruijn_graph({.base = c.m, .digits = c.h, .spares = c.k});
    const auto report = check_tolerance_monte_carlo(target, ft, c.k, 200, 1234);
    EXPECT_TRUE(report.tolerant) << c;
  }
}

TEST(FtDeBruijnBaseM, Corollary4_SingleFaultDegree6mMinus4) {
  // k = 1: degree at most 6m - 4.
  for (std::uint64_t m : {2ull, 3ull, 4ull, 5ull}) {
    const Graph g = ft_debruijn_graph({.base = m, .digits = 3, .spares = 1});
    EXPECT_LE(g.max_degree(), 6 * m - 4) << "m=" << m;
  }
}

TEST(FtDeBruijnBaseM, AblationNarrowerOffsetsBreakTolerance) {
  // Remove just the outermost negative offset: (m-1)(-k)+1 .. (m-1)(k+1).
  // h = 3: at h = 2 the graph is so small that the remaining offsets'
  // wrap-around coverage compensates for the removed offset.
  const std::uint64_t m = 3;
  const unsigned h = 3;
  const unsigned k = 2;
  const Graph target = debruijn_graph({.base = m, .digits = h});
  const auto full = ft_debruijn_offsets({.base = m, .digits = h, .spares = k});
  Graph narrowed =
      ft_debruijn_graph_custom_offsets(m, h, k, OffsetRange{full.lo + 1, full.hi});
  const auto report = check_tolerance_exhaustive(target, narrowed, k);
  EXPECT_FALSE(report.tolerant);
}

TEST(FtDeBruijnBaseM, Base2SpecializationMatchesSection3) {
  // Section IV generalizes Section III: for m = 2 the two parameterizations
  // build the identical graph.
  for (unsigned h = 3; h <= 5; ++h) {
    for (unsigned k = 0; k <= 3; ++k) {
      const Graph general = ft_debruijn_graph({.base = 2, .digits = h, .spares = k});
      const Graph base2 = ft_debruijn_base2(h, k);
      EXPECT_TRUE(general.same_structure(base2)) << "h=" << h << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace ftdb
