// Tests for the fault-tolerant shuffle-exchange constructions: the
// via-de-Bruijn route (degree 4k+4) and the natural-labeling route (paper
// figure 6k+4; our derived edge set stays within 5k+5).
#include <gtest/gtest.h>

#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "ft/tolerance.hpp"
#include "graph/algorithms.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb {
namespace {

TEST(FindSeInDeBruijn, FindsAndCachesEmbedding) {
  auto first = find_se_in_debruijn(4);
  ASSERT_TRUE(first.has_value());
  auto second = find_se_in_debruijn(4);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);  // cached result is reused
}

TEST(ViaDeBruijn, FtGraphIsFtDeBruijn) {
  const auto machine = ft_shuffle_exchange_via_debruijn(4, 2);
  EXPECT_TRUE(machine.ft_graph.same_structure(ft_debruijn_base2(4, 2)));
  EXPECT_EQ(machine.h, 4u);
  EXPECT_EQ(machine.k, 2u);
}

TEST(ViaDeBruijn, DegreeIs4kPlus4) {
  for (unsigned k = 0; k <= 3; ++k) {
    const auto machine = ft_shuffle_exchange_via_debruijn(4, k);
    EXPECT_LE(machine.ft_graph.max_degree(), 4u * k + 4) << "k=" << k;
  }
}

class ViaDeBruijnTolerance : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(ViaDeBruijnTolerance, EveryFaultSetLeavesSeIntact) {
  const auto [h, k] = GetParam();
  const Graph se = shuffle_exchange_graph(h);
  const auto machine = ft_shuffle_exchange_via_debruijn(h, k);
  const std::size_t universe = machine.ft_graph.num_nodes();
  bool all_ok = true;
  for_each_fault_set(universe, k, [&](const std::vector<NodeId>& subset) {
    const FaultSet faults(universe, subset);
    const auto full = reconfigure(machine, faults);
    if (!full.has_value()) {
      all_ok = false;
      return false;
    }
    // Each SE edge must land on a healthy FT edge.
    for (const Edge& e : se.edges()) {
      const NodeId pu = (*full)[e.u];
      const NodeId pv = (*full)[e.v];
      if (faults.is_faulty(pu) || faults.is_faulty(pv) ||
          !machine.ft_graph.has_edge(pu, pv)) {
        all_ok = false;
        return false;
      }
    }
    return true;
  });
  EXPECT_TRUE(all_ok) << "h=" << h << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ViaDeBruijnTolerance,
                         ::testing::Values(std::pair<unsigned, unsigned>{3, 1},
                                           std::pair<unsigned, unsigned>{3, 2},
                                           std::pair<unsigned, unsigned>{4, 1},
                                           std::pair<unsigned, unsigned>{4, 2},
                                           std::pair<unsigned, unsigned>{5, 1}));

TEST(NaturalLabeling, NodeCountAndIdentitySigma) {
  const auto machine = ft_shuffle_exchange_natural(4, 2);
  EXPECT_EQ(machine.ft_graph.num_nodes(), 18u);
  EXPECT_EQ(machine.se_to_logical, identity_embedding(16));
}

TEST(NaturalLabeling, ZeroSparesContainsSe) {
  // With k = 0 the natural graph must contain SE_h under the identity.
  for (unsigned h = 3; h <= 6; ++h) {
    const auto machine = ft_shuffle_exchange_natural(h, 0);
    const Graph se = shuffle_exchange_graph(h);
    for (const Edge& e : se.edges()) {
      EXPECT_TRUE(machine.ft_graph.has_edge(e.u, e.v)) << "h=" << h;
    }
  }
}

class NaturalDegree : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(NaturalDegree, WithinOurBound) {
  const auto [h, k] = GetParam();
  const auto machine = ft_shuffle_exchange_natural(h, k);
  EXPECT_LE(machine.ft_graph.max_degree(), ft_se_natural_degree_bound_ours(k))
      << "h=" << h << " k=" << k;
  // Our verified edge set is at most 2 edges denser than the paper's quoted
  // 6k+4 (see the header comment); pin that gap so regressions surface.
  EXPECT_LE(machine.ft_graph.max_degree(), ft_se_natural_degree_bound_paper(k) + 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NaturalDegree,
                         ::testing::Values(std::pair<unsigned, unsigned>{3, 1},
                                           std::pair<unsigned, unsigned>{4, 1},
                                           std::pair<unsigned, unsigned>{4, 2},
                                           std::pair<unsigned, unsigned>{5, 3},
                                           std::pair<unsigned, unsigned>{6, 4},
                                           std::pair<unsigned, unsigned>{7, 2}));

class NaturalTolerance : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(NaturalTolerance, ExhaustiveToleranceForSe) {
  const auto [h, k] = GetParam();
  const Graph se = shuffle_exchange_graph(h);
  const auto machine = ft_shuffle_exchange_natural(h, k);
  const auto report = check_tolerance_exhaustive(se, machine.ft_graph, k);
  EXPECT_TRUE(report.tolerant)
      << "h=" << h << " k=" << k << " counterexample: "
      << ::testing::PrintToString(report.counterexample_faults);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NaturalTolerance,
                         ::testing::Values(std::pair<unsigned, unsigned>{3, 1},
                                           std::pair<unsigned, unsigned>{3, 2},
                                           std::pair<unsigned, unsigned>{3, 3},
                                           std::pair<unsigned, unsigned>{4, 1},
                                           std::pair<unsigned, unsigned>{4, 2},
                                           std::pair<unsigned, unsigned>{5, 1}));

TEST(NaturalTolerance, MonteCarloLarge) {
  const Graph se = shuffle_exchange_graph(8);
  const auto machine = ft_shuffle_exchange_natural(8, 3);
  const auto report = check_tolerance_monte_carlo(se, machine.ft_graph, 3, 300, 17);
  EXPECT_TRUE(report.tolerant);
}

TEST(NaturalLabeling, AblationWithoutExchangeFamilyBreaks) {
  // Dropping the widened exchange offsets must break tolerance. (h = 4:
  // at h = 3 the wide shuffle blocks of the tiny graph happen to cover the
  // missing exchange pairs, so the ablation only bites at realistic sizes.)
  const unsigned h = 4;
  const unsigned k = 2;
  SeOffsets offsets = ft_se_natural_offsets(k);
  offsets.exchange_hi = 1;  // only the bare +-1 exchange edges
  const Graph crippled = ft_se_natural_graph_custom(h, k, offsets);
  const auto report = check_tolerance_exhaustive(shuffle_exchange_graph(h), crippled, k);
  EXPECT_FALSE(report.tolerant);
}

TEST(Reconfigure, RejectsTooManyFaults) {
  const auto machine = ft_shuffle_exchange_natural(3, 1);
  FaultSet faults(machine.ft_graph.num_nodes(), {0, 1});
  EXPECT_FALSE(reconfigure(machine, faults).has_value());
}

TEST(Reconfigure, FewerFaultsStillWork) {
  const auto machine = ft_shuffle_exchange_natural(4, 3);
  FaultSet faults(machine.ft_graph.num_nodes(), {5});
  const auto phi = reconfigure(machine, faults);
  ASSERT_TRUE(phi.has_value());
  const Graph se = shuffle_exchange_graph(4);
  for (const Edge& e : se.edges()) {
    EXPECT_TRUE(machine.ft_graph.has_edge((*phi)[e.u], (*phi)[e.v]));
  }
}

TEST(Reconfigure, UniverseMismatchThrows) {
  const auto machine = ft_shuffle_exchange_natural(3, 1);
  FaultSet faults(4, {0});
  EXPECT_THROW(reconfigure(machine, faults), std::invalid_argument);
}

TEST(DegreeComparison, ViaDeBruijnBeatsNaturalForLargeK) {
  // 4k+4 < 5k+5 for every k >= 1: the containment route gives the better
  // degree, which is the point the paper makes.
  for (unsigned k = 1; k <= 4; ++k) {
    const auto via = ft_shuffle_exchange_via_debruijn(4, k);
    const auto natural = ft_shuffle_exchange_natural(4, k);
    EXPECT_LE(via.ft_graph.max_degree(), natural.ft_graph.max_degree() + 1) << "k=" << k;
  }
}

}  // namespace
}  // namespace ftdb
