// Unit tests for the core Graph / GraphBuilder substrate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph.hpp"

namespace ftdb {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b(0);
  Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(GraphBuilder, SingleEdge) {
  GraphBuilder b(3);
  b.add_edge(0, 2);
  Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(GraphBuilder, SelfLoopsDropped) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(1, 1);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(GraphBuilder, DuplicatesAndOrientationDeduped) {
  GraphBuilder b(4);
  b.add_edge(1, 3);
  b.add_edge(3, 1);
  b.add_edge(1, 3);
  Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(GraphBuilder, OutOfRangeThrows) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(b.add_edge(5, 0), std::out_of_range);
}

TEST(GraphBuilder, ClearResets) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.clear();
  Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, NeighborsSorted) {
  GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(2, 1);
  Graph g = b.build();
  auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  for (std::size_t i = 0; i + 1 < nb.size(); ++i) EXPECT_LT(nb[i], nb[i + 1]);
}

TEST(Graph, EdgesLexicographic) {
  Graph g = make_graph(4, {{3, 2}, {0, 1}, {1, 3}});
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{1, 3}));
  EXPECT_EQ(edges[2], (Edge{2, 3}));
}

TEST(Graph, DegreeStatistics) {
  // Star on 5 nodes: center degree 4, leaves degree 1.
  Graph g = make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 8.0 / 5.0);
}

TEST(Graph, SameStructure) {
  Graph a = make_graph(3, {{0, 1}, {1, 2}});
  Graph b = make_graph(3, {{1, 2}, {0, 1}});
  Graph c = make_graph(3, {{0, 1}, {0, 2}});
  EXPECT_TRUE(a.same_structure(b));
  EXPECT_FALSE(a.same_structure(c));
}

TEST(Graph, HasEdgeOutOfRangeIsFalse) {
  Graph g = make_graph(2, {{0, 1}});
  EXPECT_FALSE(g.has_edge(0, 7));
  EXPECT_FALSE(g.has_edge(7, 0));
}

class CompleteGraphTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompleteGraphTest, CompleteGraphInvariants) {
  const std::size_t n = GetParam();
  GraphBuilder b(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  }
  Graph g = b.build();
  EXPECT_EQ(g.num_edges(), n * (n - 1) / 2);
  EXPECT_EQ(g.max_degree(), n - 1);
  EXPECT_EQ(g.min_degree(), n - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompleteGraphTest, ::testing::Values(2, 3, 5, 8, 16, 33));

}  // namespace
}  // namespace ftdb
