// Unit tests for BFS, connectivity, diameter and bipartiteness.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"

namespace ftdb {
namespace {

Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return b.build();
}

Graph cycle_graph(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return b.build();
}

TEST(BfsDistances, PathGraph) {
  Graph g = path_graph(5);
  auto dist = bfs_distances(g, 0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsDistances, DisconnectedUnreachable) {
  Graph g = make_graph(4, {{0, 1}, {2, 3}});
  auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(ShortestPath, ReconstructsPath) {
  Graph g = cycle_graph(6);
  auto path = shortest_path(g, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
}

TEST(ShortestPath, SourceEqualsTarget) {
  Graph g = path_graph(3);
  auto path = shortest_path(g, 1, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

TEST(ShortestPath, UnreachableEmpty) {
  Graph g = make_graph(3, {{0, 1}});
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(ConnectedComponents, CountsComponents) {
  Graph g = make_graph(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(num_connected_components(g), 3u);
  auto label = connected_components(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_NE(label[3], label[5]);
}

TEST(IsConnected, TrivialCases) {
  EXPECT_TRUE(is_connected(make_graph(0, {})));
  EXPECT_TRUE(is_connected(make_graph(1, {})));
  EXPECT_FALSE(is_connected(make_graph(2, {})));
}

TEST(Diameter, CycleGraph) {
  EXPECT_EQ(diameter(cycle_graph(8)), 4u);
  EXPECT_EQ(diameter(cycle_graph(9)), 4u);
}

TEST(Diameter, DisconnectedIsUnreachable) {
  EXPECT_EQ(diameter(make_graph(3, {{0, 1}})), kUnreachable);
}

TEST(Diameter, HypercubeIsH) {
  for (unsigned h = 2; h <= 5; ++h) {
    EXPECT_EQ(diameter(hypercube_graph(h)), h) << "h=" << h;
  }
}

TEST(Diameter, DeBruijnAtMostH) {
  // The de Bruijn graph's diameter is exactly h for h >= 2 (shift routing).
  for (unsigned h = 2; h <= 6; ++h) {
    EXPECT_EQ(diameter(debruijn_base2(h)), h) << "h=" << h;
  }
}

TEST(Bipartite, EvenCycleYesOddCycleNo) {
  EXPECT_TRUE(is_bipartite(cycle_graph(8)));
  EXPECT_FALSE(is_bipartite(cycle_graph(7)));
}

TEST(Bipartite, HypercubeIsBipartite) { EXPECT_TRUE(is_bipartite(hypercube_graph(4))); }

TEST(DegreeHistogram, StarGraph) {
  Graph g = make_graph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
}

TEST(Eccentricity, PathEndpoints) {
  Graph g = path_graph(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
}

class BfsVsDiameterTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BfsVsDiameterTest, EccentricityNeverExceedsDiameter) {
  const unsigned h = GetParam();
  Graph g = debruijn_base2(h);
  const std::uint32_t diam = diameter(g);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(eccentricity(g, static_cast<NodeId>(v)), diam);
  }
}

INSTANTIATE_TEST_SUITE_P(DeBruijn, BfsVsDiameterTest, ::testing::Values(3, 4, 5));

}  // namespace
}  // namespace ftdb
