// Property tests for the linear-time graph core: the counting-sort CSR
// construction must be byte-identical to the retained comparison-sort
// reference (`GraphBuilder::build_reference`), and the allocation-free
// BfsWorkspace / bit-parallel all-pairs engine must agree exactly with a
// plain queue-based BFS oracle — across random multigraphs, the paper
// construction grid (m, h, k) in {2,3,4} x {2..6} x {0..4}, and edge cases
// (empty graph, self-loops only, parallel edges).
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <random>
#include <vector>

#include "analysis/parallel_all_pairs.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/modmath.hpp"
#include "graph/algorithms.hpp"
#include "graph/bfs_workspace.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "graph/multi_source_bfs.hpp"
#include "topology/debruijn.hpp"
#include "topology/labels.hpp"
#include "topology/shuffle_exchange.hpp"

namespace {

using namespace ftdb;

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> queue_bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> queue_bfs_parents(const Graph& g, NodeId source) {
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  std::queue<NodeId> frontier;
  parent[source] = source;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : g.neighbors(u)) {
      if (parent[v] == kInvalidNode) {
        parent[v] = u;
        frontier.push(v);
      }
    }
  }
  return parent;
}

Graph random_multigraph(std::mt19937_64& rng, std::size_t max_nodes, GraphBuilder* out_builder) {
  std::uniform_int_distribution<std::size_t> node_dist(0, max_nodes);
  const std::size_t n = node_dist(rng);
  GraphBuilder b(n);
  if (n > 0) {
    std::uniform_int_distribution<std::size_t> edge_count(0, 4 * n);
    std::uniform_int_distribution<NodeId> node(0, static_cast<NodeId>(n - 1));
    const std::size_t m = edge_count(rng);
    for (std::size_t i = 0; i < m; ++i) {
      // Includes self-loops, duplicates and both endpoint orders by design.
      b.add_edge(node(rng), node(rng));
    }
  }
  if (out_builder != nullptr) *out_builder = b;
  return b.build();
}

void expect_identical(const Graph& fast, const Graph& reference) {
  ASSERT_EQ(fast.num_nodes(), reference.num_nodes());
  ASSERT_EQ(fast.num_edges(), reference.num_edges());
  // same_structure compares the raw offsets/adjacency arrays — byte-identical
  // CSR, not just an isomorphic edge set.
  EXPECT_TRUE(fast.same_structure(reference));
}

// ---------------------------------------------------------------------------
// Radix CSR construction vs the retained reference implementation
// ---------------------------------------------------------------------------

TEST(RadixCsrConstruction, MatchesReferenceOnRandomMultigraphs) {
  std::mt19937_64 rng(20260729);
  for (int trial = 0; trial < 200; ++trial) {
    GraphBuilder b(0);
    const Graph fast = random_multigraph(rng, 64, &b);
    expect_identical(fast, b.build_reference());
  }
}

TEST(RadixCsrConstruction, MatchesReferenceOnEdgeCases) {
  {
    GraphBuilder b(0);  // empty graph: no nodes, no edges
    expect_identical(b.build(), b.build_reference());
    EXPECT_EQ(b.build().num_nodes(), 0u);
  }
  {
    GraphBuilder b(5);  // nodes but no edges
    expect_identical(b.build(), b.build_reference());
    EXPECT_EQ(b.build().num_edges(), 0u);
  }
  {
    GraphBuilder b(4);  // self-loops only: all dropped
    for (NodeId v = 0; v < 4; ++v) b.add_edge(v, v);
    const Graph g = b.build();
    expect_identical(g, b.build_reference());
    EXPECT_EQ(g.num_edges(), 0u);
  }
  {
    GraphBuilder b(3);  // parallel edges in both orders: collapse to one
    for (int i = 0; i < 7; ++i) b.add_edge(0, 1);
    for (int i = 0; i < 7; ++i) b.add_edge(1, 0);
    b.add_edge(2, 2);
    const Graph g = b.build();
    expect_identical(g, b.build_reference());
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_TRUE(g.has_edge(0, 1));
  }
}

TEST(RadixCsrConstruction, MatchesReferenceOnPaperConstructionGrid) {
  for (std::uint64_t m = 2; m <= 4; ++m) {
    for (unsigned h = 2; h <= 6; ++h) {
      for (unsigned k = 0; k <= 4; ++k) {
        const FtDeBruijnParams params{.base = m, .digits = h, .spares = k};
        const Graph fast = ft_debruijn_graph(params);

        // Reference: emit the defining arcs X(x, m, r, s) into the plain
        // builder and finalize with the retained comparison-sort path.
        const std::uint64_t n = ft_debruijn_num_nodes(params);
        const auto s = static_cast<std::int64_t>(n);
        const OffsetRange offsets = ft_debruijn_offsets(params);
        GraphBuilder b(n);
        for (std::int64_t x = 0; x < s; ++x) {
          for (std::int64_t r = offsets.lo; r <= offsets.hi; ++r) {
            b.add_edge(static_cast<NodeId>(x),
                       static_cast<NodeId>(ft::affine_mod(x, static_cast<std::int64_t>(m), r, s)));
          }
        }
        expect_identical(fast, b.build_reference());
      }
    }
  }
}

TEST(RadixCsrConstruction, MatchesReferenceOnTargetTopologies) {
  for (std::uint64_t m = 2; m <= 4; ++m) {
    for (unsigned h = 2; h <= 6; ++h) {
      const Graph fast = debruijn_graph({.base = static_cast<std::uint32_t>(m), .digits = h});
      const std::uint64_t n = labels::ipow_checked(m, h);
      GraphBuilder b(n);
      for (std::uint64_t x = 0; x < n; ++x) {
        for (std::uint64_t r = 0; r < m; ++r) {
          b.add_edge(static_cast<NodeId>(x), static_cast<NodeId>((x * m + r) % n));
        }
      }
      expect_identical(fast, b.build_reference());
    }
  }
  for (unsigned h = 2; h <= 8; ++h) {
    const Graph fast = shuffle_exchange_graph(h);
    const std::uint64_t n = labels::ipow_checked(2, h);
    GraphBuilder b(n);
    for (std::uint64_t x = 0; x < n; ++x) {
      b.add_edge(static_cast<NodeId>(x), static_cast<NodeId>(labels::rotate_left(x, 2, h)));
      b.add_edge(static_cast<NodeId>(x), static_cast<NodeId>(labels::exchange_bit0(x)));
    }
    expect_identical(fast, b.build_reference());
  }
}

TEST(RadixCsrConstruction, DigraphBuilderMatchesSortedArcConstruction) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::uniform_int_distribution<std::size_t> node_dist(1, 48);
    const std::size_t n = node_dist(rng);
    std::uniform_int_distribution<std::size_t> arc_count(0, 5 * n);
    std::uniform_int_distribution<NodeId> node(0, static_cast<NodeId>(n - 1));
    std::vector<std::pair<NodeId, NodeId>> arcs;
    const std::size_t m = arc_count(rng);
    for (std::size_t i = 0; i < m; ++i) arcs.emplace_back(node(rng), node(rng));

    DigraphBuilder builder(n);
    for (const auto& [u, v] : arcs) builder.add_arc(u, v);
    const Digraph fast = std::move(builder).build();

    // Reference: the original construction sorted the arc list and scattered
    // it into both CSRs; replicate that ordering directly.
    std::sort(arcs.begin(), arcs.end());
    ASSERT_EQ(fast.num_nodes(), n);
    ASSERT_EQ(fast.num_arcs(), arcs.size());
    std::vector<std::vector<NodeId>> out(n), in(n);
    for (const auto& [u, v] : arcs) {
      out[u].push_back(v);
      in[v].push_back(u);
    }
    for (std::size_t v = 0; v < n; ++v) {
      const auto fo = fast.out_neighbors(static_cast<NodeId>(v));
      const auto fi = fast.in_neighbors(static_cast<NodeId>(v));
      ASSERT_EQ(std::vector<NodeId>(fo.begin(), fo.end()), out[v]) << "node " << v;
      ASSERT_EQ(std::vector<NodeId>(fi.begin(), fi.end()), in[v]) << "node " << v;
    }
  }
}

TEST(RadixCsrConstruction, HalfEdgeFastPathRejectsOutOfRangeEndpoints) {
  std::vector<std::uint64_t> halves{(std::uint64_t{7} << 32) | 1, (std::uint64_t{1} << 32) | 7};
  EXPECT_THROW(GraphBuilder::from_half_edges(4, halves), std::out_of_range);
}

// ---------------------------------------------------------------------------
// BfsWorkspace vs the queue-based oracle
// ---------------------------------------------------------------------------

TEST(BfsWorkspaceProperty, DistancesAndParentsMatchQueueBfs) {
  std::mt19937_64 rng(7);
  BfsWorkspace ws;  // shared across all graphs/sources to exercise epoch reuse
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> parent;
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = random_multigraph(rng, 48, nullptr);
    for (std::size_t s = 0; s < g.num_nodes(); ++s) {
      const auto source = static_cast<NodeId>(s);
      ws.distances(g, source, dist);
      EXPECT_EQ(dist, queue_bfs_distances(g, source));
      ws.parents(g, source, parent);
      EXPECT_EQ(parent, queue_bfs_parents(g, source));
    }
  }
}

TEST(BfsWorkspaceProperty, SweepMatchesDistanceAggregates) {
  std::mt19937_64 rng(11);
  BfsWorkspace ws;
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = random_multigraph(rng, 48, nullptr);
    for (std::size_t s = 0; s < g.num_nodes(); ++s) {
      const auto source = static_cast<NodeId>(s);
      const auto sweep = ws.sweep(g, source);
      const auto dist = queue_bfs_distances(g, source);
      std::uint64_t reached = 0, total = 0;
      std::uint32_t ecc = 0;
      for (const std::uint32_t d : dist) {
        if (d == kUnreachable) continue;
        ++reached;
        total += d;
        ecc = std::max(ecc, d);
      }
      EXPECT_EQ(sweep.reached, reached);
      EXPECT_EQ(sweep.total_distance, total);
      EXPECT_EQ(sweep.eccentricity, ecc);
    }
  }
}

TEST(BfsWorkspaceProperty, WorksOnPaperConstructions) {
  BfsWorkspace ws;
  std::vector<std::uint32_t> dist;
  for (unsigned h = 2; h <= 5; ++h) {
    for (unsigned k = 0; k <= 3; ++k) {
      const Graph g = ft_debruijn_base2(h, k);
      for (const NodeId source : {NodeId{0}, static_cast<NodeId>(g.num_nodes() - 1)}) {
        ws.distances(g, source, dist);
        EXPECT_EQ(dist, queue_bfs_distances(g, source));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-parallel all-pairs engine vs per-source accumulation
// ---------------------------------------------------------------------------

ftdb::analysis::AllPairsSummary reference_all_pairs(const Graph& g) {
  ftdb::analysis::AllPairsSummary ref;
  ref.sources = g.num_nodes();
  ref.connected = true;
  if (g.num_nodes() <= 1) return ref;
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    const auto dist = queue_bfs_distances(g, static_cast<NodeId>(s));
    std::uint64_t reached = 0;
    for (const std::uint32_t d : dist) {
      if (d == kUnreachable) continue;
      ++reached;
      ref.total_distance += d;
      ref.max_finite_distance = std::max(ref.max_finite_distance, d);
    }
    ref.reachable_pairs += reached - 1;
    ref.connected = ref.connected && reached == g.num_nodes();
  }
  return ref;
}

void expect_summary_eq(const ftdb::analysis::AllPairsSummary& a,
                       const ftdb::analysis::AllPairsSummary& b) {
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.reachable_pairs, b.reachable_pairs);
  EXPECT_EQ(a.total_distance, b.total_distance);
  EXPECT_EQ(a.max_finite_distance, b.max_finite_distance);
  EXPECT_EQ(a.connected, b.connected);
}

TEST(ParallelAllPairs, MatchesReferenceOnRandomGraphs) {
  std::mt19937_64 rng(2029);
  for (int trial = 0; trial < 80; ++trial) {
    const Graph g = random_multigraph(rng, 90, nullptr);  // spans multiple 64-wide batches
    const auto ref = reference_all_pairs(g);
    expect_summary_eq(ftdb::analysis::all_pairs_summary(g), ref);
    // Thread sharding must not change any aggregate (deterministic reduction).
    expect_summary_eq(ftdb::analysis::all_pairs_summary(g, {.threads = 3}), ref);
  }
}

TEST(ParallelAllPairs, MatchesReferenceOnPaperConstructions) {
  for (unsigned h = 2; h <= 6; ++h) {
    for (unsigned k : {0u, 2u}) {
      const Graph g = ft_debruijn_base2(h, k);
      expect_summary_eq(ftdb::analysis::all_pairs_summary(g), reference_all_pairs(g));
    }
  }
}

TEST(ParallelAllPairs, EdgeCases) {
  {
    const Graph g = make_graph(0, {});
    const auto s = ftdb::analysis::all_pairs_summary(g);
    EXPECT_TRUE(s.connected);
    EXPECT_EQ(s.reachable_pairs, 0u);
    EXPECT_EQ(ftdb::analysis::parallel_diameter(g), 0u);
  }
  {
    const Graph g = make_graph(1, {});
    EXPECT_TRUE(ftdb::analysis::all_pairs_summary(g).connected);
    EXPECT_EQ(ftdb::analysis::parallel_diameter(g), 0u);
  }
  {
    const Graph g = make_graph(4, {{0, 1}, {2, 3}});  // disconnected
    EXPECT_FALSE(ftdb::analysis::all_pairs_summary(g).connected);
    EXPECT_EQ(ftdb::analysis::parallel_diameter(g), kUnreachable);
    EXPECT_EQ(diameter(g), kUnreachable);
  }
}

TEST(ParallelAllPairs, DiameterAgreesWithSerialSweeps) {
  std::mt19937_64 rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = random_multigraph(rng, 90, nullptr);
    std::uint32_t ref = 0;
    if (g.num_nodes() > 0) {
      bool connected = true;
      for (std::size_t s = 0; s < g.num_nodes(); ++s) {
        const auto dist = queue_bfs_distances(g, static_cast<NodeId>(s));
        for (const std::uint32_t d : dist) {
          if (d == kUnreachable) {
            connected = false;
          } else {
            ref = std::max(ref, d);
          }
        }
      }
      if (!connected) ref = kUnreachable;
    }
    EXPECT_EQ(diameter(g), ref);
    EXPECT_EQ(ftdb::analysis::parallel_diameter(g), ref);
  }
}

// ---------------------------------------------------------------------------
// MultiSourceBfs::run_batch distance output vs the queue BFS oracle
// ---------------------------------------------------------------------------

TEST(MultiSourceBatchDistances, MatchesQueueBfsOnRandomGraphsAndArbitrarySources) {
  std::mt19937_64 rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = random_multigraph(rng, 90, nullptr);
    const std::size_t n = g.num_nodes();
    if (n == 0) continue;
    // An arbitrary (non-contiguous, unsorted) batch of distinct sources.
    std::vector<NodeId> all(n);
    for (std::size_t v = 0; v < n; ++v) all[v] = static_cast<NodeId>(v);
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t width = 1 + rng() % std::min<std::size_t>(n, 64);
    const std::vector<NodeId> sources(all.begin(),
                                      all.begin() + static_cast<std::ptrdiff_t>(width));
    MultiSourceBfs scan(n);
    std::vector<std::uint32_t> dist;
    scan.run_batch(g, sources, &dist);
    ASSERT_EQ(dist.size(), width * n);
    for (std::size_t i = 0; i < width; ++i) {
      const auto ref = queue_bfs_distances(g, sources[i]);
      for (std::size_t v = 0; v < n; ++v) {
        ASSERT_EQ(dist[i * n + v], ref[v])
            << "trial " << trial << " source " << sources[i] << " node " << v;
      }
    }
  }
}

TEST(MultiSourceBatchDistances, RejectsBadBatches) {
  const Graph g = debruijn_base2(3);
  MultiSourceBfs scan(g.num_nodes());
  EXPECT_THROW(scan.run_batch(g, std::vector<NodeId>{}), std::invalid_argument);
  EXPECT_THROW(scan.run_batch(g, std::vector<NodeId>{0, 0}), std::invalid_argument);
  EXPECT_THROW(scan.run_batch(g, std::vector<NodeId>{99}), std::invalid_argument);
}

TEST(MultiSourceBatchDistances, ContiguousRunStillMatchesAggregates) {
  // run() is now a thin wrapper over run_batch; its aggregates must agree
  // with per-source sweeps.
  const Graph g = ft_debruijn_base2(5, 3);
  MultiSourceBfs scan(g.num_nodes());
  const auto stats = scan.run(g, 0);
  std::uint64_t pairs = 0;
  std::uint64_t total = 0;
  std::uint32_t ecc = 0;
  for (NodeId s = 0; s < 35; ++s) {
    const auto ref = queue_bfs_distances(g, s);
    for (const std::uint32_t d : ref) {
      if (d == kUnreachable || d == 0) continue;
      ++pairs;
      total += d;
      ecc = std::max(ecc, d);
    }
  }
  EXPECT_EQ(stats.reachable_pairs, pairs);
  EXPECT_EQ(stats.total_distance, total);
  EXPECT_EQ(stats.max_finite_distance, ecc);
  EXPECT_TRUE(stats.all_reach_all);
}

}  // namespace
