// End-to-end integration tests crossing all modules: build an FT machine,
// fault it, reconfigure, route real traffic, run Ascend, and compare against
// the degraded bare machine — the complete story the paper tells.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "ft/bus_ft.hpp"
#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "ft/samatham_pradhan.hpp"
#include "ft/spares.hpp"
#include "ft/tolerance.hpp"
#include "graph/algorithms.hpp"
#include "sim/ascend_descend.hpp"
#include "sim/bus_engine.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb {
namespace {

TEST(EndToEnd, FullLifecycleDeBruijn) {
  const unsigned h = 5;
  const unsigned k = 3;
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);

  std::mt19937_64 rng(2024);
  for (int round = 0; round < 10; ++round) {
    const FaultSet faults = FaultSet::random(ft.num_nodes(), k, rng);
    // Structural guarantee.
    ASSERT_TRUE(monotone_embedding_survives(target, ft, faults));
    // Operational guarantee: full traffic service.
    const sim::Machine machine = sim::Machine::reconfigured(ft, faults, target.num_nodes());
    const auto packets = sim::uniform_traffic(target.num_nodes(), 200, 4, round);
    const auto stats = sim::run_packets(machine, target, packets);
    EXPECT_EQ(stats.delivered, stats.injected);
    // Algorithmic guarantee: Ascend still computes the right answer.
    std::vector<std::int64_t> values(target.num_nodes());
    std::iota(values.begin(), values.end(), 0);
    const auto total = std::accumulate(values.begin(), values.end(), std::int64_t{0});
    const auto result = sim::ascend_debruijn(
        h, values, [](std::int64_t a, std::int64_t b) { return a + b; }, 2, &machine);
    for (auto v : result.values) EXPECT_EQ(v, total);
  }
}

TEST(EndToEnd, DegradedVsReconfiguredContrast) {
  // The introduction's motivation, measured: a single fault on the bare
  // target breaks traffic and algorithms; the FT machine is unaffected.
  const unsigned h = 5;
  const Graph target = debruijn_base2(h);
  const auto packets = sim::uniform_traffic(target.num_nodes(), 400, 4, 5);

  const FaultSet bare_fault(target.num_nodes(), {7});
  const sim::Machine degraded = sim::Machine::direct_with_faults(target, bare_fault);
  const auto degraded_stats = sim::run_packets(degraded, target, packets);
  EXPECT_GT(degraded_stats.undeliverable, 0u);

  const Graph ft = ft_debruijn_base2(h, 1);
  const FaultSet ft_fault(ft.num_nodes(), {7});
  const sim::Machine healthy = sim::Machine::reconfigured(ft, ft_fault, target.num_nodes());
  const auto ft_stats = sim::run_packets(healthy, target, packets);
  EXPECT_EQ(ft_stats.undeliverable, 0u);
  EXPECT_EQ(ft_stats.delivered, ft_stats.injected);
}

TEST(EndToEnd, ShuffleExchangeBothRoutesAgree) {
  // Both FT-SE constructions must tolerate the same fault budget; compare on
  // a common instance.
  const unsigned h = 4;
  const unsigned k = 2;
  const Graph se = shuffle_exchange_graph(h);
  const auto via = ft_shuffle_exchange_via_debruijn(h, k);
  const auto natural = ft_shuffle_exchange_natural(h, k);

  std::mt19937_64 rng(77);
  for (int round = 0; round < 50; ++round) {
    const FaultSet faults_via = FaultSet::random(via.ft_graph.num_nodes(), k, rng);
    const auto phi_via = reconfigure(via, faults_via);
    ASSERT_TRUE(phi_via.has_value());
    for (const Edge& e : se.edges()) {
      EXPECT_TRUE(via.ft_graph.has_edge((*phi_via)[e.u], (*phi_via)[e.v]));
    }
    const FaultSet faults_nat = FaultSet::random(natural.ft_graph.num_nodes(), k, rng);
    const auto phi_nat = reconfigure(natural, faults_nat);
    ASSERT_TRUE(phi_nat.has_value());
    for (const Edge& e : se.edges()) {
      EXPECT_TRUE(natural.ft_graph.has_edge((*phi_nat)[e.u], (*phi_nat)[e.v]));
    }
  }
}

TEST(EndToEnd, BusMachineSurvivesMixedFaults) {
  const unsigned h = 4;
  const unsigned k = 2;
  const Graph target = debruijn_base2(h);
  const BusGraph fabric = bus_ft_debruijn_base2(h, k);
  // One node fault and one bus fault.
  const auto faults = resolve_bus_faults(fabric, k, {6}, {13});
  ASSERT_TRUE(faults.has_value());
  EXPECT_TRUE(bus_monotone_embedding_survives(target, fabric, *faults));
  // And the surviving fabric can schedule a full de Bruijn round.
  const auto phi = monotone_embedding(*faults);
  std::vector<sim::Transfer> transfers;
  for (const sim::Transfer& t : sim::debruijn_round_transfers(h)) {
    transfers.push_back(sim::Transfer{phi[t.src], phi[t.dst]});
  }
  const auto schedule = sim::schedule_bus(fabric, transfers, 1);
  EXPECT_TRUE(schedule.feasible);
}

TEST(EndToEnd, SparePlanningMatchesToleranceBudget) {
  // Choose k from the reliability model, then confirm the built machine
  // tolerates exactly that budget on random fault draws.
  const unsigned h = 6;
  const std::uint64_t n = 64;
  const long double p = 0.005L;
  const unsigned k = min_spares_for_reliability(n, p, 0.999L, 12);
  ASSERT_LE(k, 12u);
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);
  const auto report = check_tolerance_monte_carlo(target, ft, k, 200, 31);
  EXPECT_TRUE(report.tolerant);
}

TEST(EndToEnd, BaselineComparisonOnEqualBudget) {
  // Same tolerance budget k: ours uses N+k nodes, the digit-copies baseline
  // (m(k+1))^h — verify both actually tolerate k faults, then compare cost.
  const std::uint64_t m = 2;
  const unsigned h = 3;
  const unsigned k = 1;
  const Graph target = debruijn_graph({.base = m, .digits = h});

  const Graph ours = ft_debruijn_graph({.base = m, .digits = h, .spares = k});
  EXPECT_TRUE(check_tolerance_exhaustive(target, ours, k).tolerant);

  const Graph baseline = digit_copies_graph(m, h, k);
  std::mt19937_64 rng(12);
  for (int round = 0; round < 100; ++round) {
    const FaultSet faults = FaultSet::random(baseline.num_nodes(), k, rng);
    const auto phi = digit_copies_reconfigure(m, h, k, faults);
    ASSERT_TRUE(phi.has_value());
    EXPECT_TRUE(is_valid_embedding(target, baseline, *phi));
  }
  EXPECT_LT(ours.num_nodes(), baseline.num_nodes());
}

TEST(EndToEnd, EdgeFaultsHandledViaNodeConversion) {
  // Paper: "edge faults can be tolerated by viewing a node that is incident
  // to the faulty edge as being faulty."
  const unsigned h = 4;
  const unsigned k = 2;
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, k);
  const std::vector<Edge> bad_edges{{3, 6}, {6, 12}};  // share node 6
  const auto node_faults = sim::edge_faults_to_node_faults(ft, bad_edges);
  ASSERT_LE(node_faults.size(), k);
  const FaultSet faults(ft.num_nodes(), node_faults);
  EXPECT_TRUE(monotone_embedding_survives(target, ft, faults));
}

}  // namespace
}  // namespace ftdb
