// Unit tests for graph serialization (DOT / edge list / adjacency).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/io.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

TEST(ToDot, ContainsNodesAndEdges) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
}

TEST(ToDot, CustomLabelsAndHighlights) {
  Graph g = make_graph(2, {{0, 1}});
  DotOptions opts;
  opts.graph_name = "Fig";
  opts.node_labels = {"alpha", "beta"};
  opts.highlighted_nodes = {1};
  std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("graph Fig {"), std::string::npos);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=gray"), std::string::npos);
}

TEST(ToDot, SolidVsDashedEdges) {
  Graph g = make_graph(3, {{0, 1}, {1, 2}});
  DotOptions opts;
  opts.solid_edges = {Edge{1, 0}};  // orientation-insensitive
  std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("[style=solid]"), std::string::npos);
  EXPECT_NE(dot.find("[style=dashed]"), std::string::npos);
}

TEST(EdgeList, RoundTrip) {
  Graph g = debruijn_base2(4);
  std::string text = to_edge_list(g);
  std::istringstream in(text);
  Graph back = from_edge_list(in);
  EXPECT_TRUE(g.same_structure(back));
}

TEST(EdgeList, HeaderMatchesCounts) {
  Graph g = make_graph(5, {{0, 4}, {1, 2}});
  std::istringstream in(to_edge_list(g));
  std::size_t nodes = 0;
  std::size_t edges = 0;
  in >> nodes >> edges;
  EXPECT_EQ(nodes, 5u);
  EXPECT_EQ(edges, 2u);
}

TEST(EdgeList, BadHeaderThrows) {
  std::istringstream in("garbage");
  EXPECT_THROW(from_edge_list(in), std::runtime_error);
}

TEST(EdgeList, TruncatedThrows) {
  std::istringstream in("3 2\n0 1\n");
  EXPECT_THROW(from_edge_list(in), std::runtime_error);
}

TEST(FormatAdjacency, OneLinePerNode) {
  Graph g = make_graph(3, {{0, 1}, {0, 2}});
  std::string text = format_adjacency(g);
  EXPECT_EQ(text, "0: 1 2\n1: 0\n2: 0\n");
}

}  // namespace
}  // namespace ftdb
