// Unit tests for the base-m digit-string utilities of Section II.
#include <gtest/gtest.h>

#include <stdexcept>

#include "topology/labels.hpp"

namespace ftdb::labels {
namespace {

TEST(IpowChecked, SmallValues) {
  EXPECT_EQ(ipow_checked(2, 0), 1u);
  EXPECT_EQ(ipow_checked(2, 10), 1024u);
  EXPECT_EQ(ipow_checked(3, 4), 81u);
  EXPECT_EQ(ipow_checked(10, 6), 1000000u);
}

TEST(IpowChecked, OverflowThrows) { EXPECT_THROW(ipow_checked(2, 64), std::overflow_error); }

TEST(DigitsOf, RoundTrip) {
  for (std::uint64_t m : {2ull, 3ull, 5ull}) {
    for (unsigned h : {1u, 3u, 5u}) {
      const std::uint64_t n = ipow_checked(m, h);
      for (std::uint64_t x = 0; x < n; ++x) {
        EXPECT_EQ(from_digits(digits_of(x, m, h), m), x);
      }
    }
  }
}

TEST(DigitsOf, LeastSignificantFirst) {
  auto d = digits_of(6, 2, 3);  // 110_2
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 1}));
}

TEST(DigitsOf, OverflowingValueThrows) {
  EXPECT_THROW(digits_of(8, 2, 3), std::invalid_argument);
}

TEST(FromDigits, DigitRangeChecked) {
  EXPECT_THROW(from_digits({2, 0}, 2), std::invalid_argument);
}

TEST(ShiftInLow, MatchesFormula) {
  // Digit vectors are least-significant-first: x = [x2,x1,x0] = [2,1,0]_3 is
  // {0, 1, 2}. Shift-in-low maps [2,1,0] -> [1,0,r].
  const std::uint64_t x = from_digits({0, 1, 2}, 3);  // 21 = [2,1,0]_3
  EXPECT_EQ(shift_in_low(x, 3, 3, 2), from_digits({2, 0, 1}, 3));  // [1,0,2]_3 = 11
}

TEST(ShiftInHigh, MatchesFormula) {
  // [x2,x1,x0] = [2,1,0] -> [r,x2,x1] = [1,2,1].
  const std::uint64_t x = from_digits({0, 1, 2}, 3);
  EXPECT_EQ(shift_in_high(x, 3, 3, 1), from_digits({1, 2, 1}, 3));  // 16
}

TEST(ShiftIn, BadDigitThrows) {
  EXPECT_THROW(shift_in_low(0, 2, 3, 2), std::invalid_argument);
  EXPECT_THROW(shift_in_high(0, 2, 3, 5), std::invalid_argument);
}

TEST(Rotations, InverseOfEachOther) {
  for (std::uint64_t m : {2ull, 4ull}) {
    const unsigned h = 4;
    const std::uint64_t n = ipow_checked(m, h);
    for (std::uint64_t x = 0; x < n; ++x) {
      EXPECT_EQ(rotate_right(rotate_left(x, m, h), m, h), x);
      EXPECT_EQ(rotate_left(rotate_right(x, m, h), m, h), x);
    }
  }
}

TEST(Rotations, HFoldRotationIsIdentity) {
  const unsigned h = 5;
  for (std::uint64_t x = 0; x < 32; ++x) {
    std::uint64_t y = x;
    for (unsigned i = 0; i < h; ++i) y = rotate_left(y, 2, h);
    EXPECT_EQ(y, x);
  }
}

TEST(HighDigit, BinaryMsb) {
  EXPECT_EQ(high_digit(0b1010, 2, 4), 1u);
  EXPECT_EQ(high_digit(0b0010, 2, 4), 0u);
}

TEST(ToDigitString, PaperNotation) {
  EXPECT_EQ(to_digit_string(6, 2, 4), "[0,1,1,0]");
  EXPECT_EQ(to_digit_string(5, 3, 2), "[1,2]");
}

TEST(ExchangeBit0, FlipsLowBit) {
  EXPECT_EQ(exchange_bit0(0), 1u);
  EXPECT_EQ(exchange_bit0(7), 6u);
  EXPECT_EQ(exchange_bit0(exchange_bit0(42)), 42u);
}

}  // namespace
}  // namespace ftdb::labels
