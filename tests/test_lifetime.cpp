// Tests for the machine-lifetime (MTTF) model and simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/lifetime.hpp"

namespace ftdb::sim {
namespace {

TEST(AnalyticMttf, ZeroSparesSingleRace) {
  // With k = 0 the machine dies at the first failure:
  // E = 1 / (1 - (1-p)^N).
  const LifetimeParams params{.target_nodes = 10, .spares = 0, .failure_prob = 0.01};
  const double expected = 1.0 / (1.0 - std::pow(0.99, 10.0));
  EXPECT_NEAR(analytic_mttf(params), expected, 1e-9);
}

TEST(AnalyticMttf, MoreSparesLiveLonger) {
  double prev = 0.0;
  for (unsigned k = 0; k <= 6; ++k) {
    const double mttf = analytic_mttf({.target_nodes = 64, .spares = k, .failure_prob = 0.001});
    EXPECT_GT(mttf, prev);
    prev = mttf;
  }
}

TEST(AnalyticMttf, InvalidProbabilityThrows) {
  EXPECT_THROW(analytic_mttf({.target_nodes = 4, .spares = 1, .failure_prob = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(analytic_mttf({.target_nodes = 4, .spares = 1, .failure_prob = 1.0}),
               std::invalid_argument);
}

TEST(SimulateLifetime, MatchesAnalyticWithinTolerance) {
  const LifetimeParams params{.target_nodes = 64, .spares = 3, .failure_prob = 0.002};
  const LifetimeResult r = simulate_lifetime(params, 4000, 7);
  EXPECT_EQ(r.trials, 4000u);
  // 4000 trials: expect within ~5% of the analytic value.
  EXPECT_NEAR(r.empirical_mttf / r.analytic_mttf, 1.0, 0.05);
  EXPECT_LE(r.min_lifetime, r.empirical_mttf);
  EXPECT_GE(r.max_lifetime, r.empirical_mttf);
}

TEST(SimulateLifetime, DeterministicGivenSeed) {
  const LifetimeParams params{.target_nodes = 32, .spares = 2, .failure_prob = 0.01};
  const LifetimeResult a = simulate_lifetime(params, 100, 3);
  const LifetimeResult b = simulate_lifetime(params, 100, 3);
  EXPECT_DOUBLE_EQ(a.empirical_mttf, b.empirical_mttf);
}

TEST(SimulateLifetime, ZeroTrialsThrows) {
  EXPECT_THROW(simulate_lifetime({.target_nodes = 4, .spares = 0, .failure_prob = 0.1}, 0, 1),
               std::invalid_argument);
}

TEST(LifetimeMultiplier, SparesMultiplyLifetimeRoughlyLinearly) {
  // Each additional spare adds roughly one more expected failure-wait, so
  // MTTF(k)/MTTF(0) ~ k+1 for small p.
  for (unsigned k = 1; k <= 4; ++k) {
    const double mult = lifetime_multiplier(256, k, 0.0001);
    EXPECT_GT(mult, 0.9 * (k + 1));
    EXPECT_LT(mult, 1.1 * (k + 1));
  }
}

}  // namespace
}  // namespace ftdb::sim
