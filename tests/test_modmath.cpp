// Tests for the Section II primitives: X(z,m,r,s), Rank, and the wrap-count
// decomposition behind Lemmas 2 and 3.
#include <gtest/gtest.h>

#include "ft/modmath.hpp"

namespace ftdb::ft {
namespace {

TEST(AffineMod, MatchesPaperExamples) {
  // X(z, m, r, s) = (z*m + r) mod s.
  EXPECT_EQ(affine_mod(3, 2, 0, 16), 6);
  EXPECT_EQ(affine_mod(3, 2, 1, 16), 7);
  EXPECT_EQ(affine_mod(9, 2, 0, 16), 2);   // wraps
  EXPECT_EQ(affine_mod(9, 2, 1, 16), 3);
}

TEST(AffineMod, NegativeOffsets) {
  EXPECT_EQ(affine_mod(0, 2, -1, 17), 16);
  EXPECT_EQ(affine_mod(0, 2, -3, 17), 14);
  EXPECT_EQ(affine_mod(5, 3, -2, 28), 13);
}

TEST(AffineMod, ResultAlwaysCanonical) {
  for (std::int64_t z = 0; z < 20; ++z) {
    for (std::int64_t r = -10; r <= 10; ++r) {
      const std::int64_t y = affine_mod(z, 3, r, 20);
      EXPECT_GE(y, 0);
      EXPECT_LT(y, 20);
      // Congruence: y ≡ 3z + r (mod 20).
      EXPECT_EQ(((3 * z + r) % 20 + 20) % 20, y);
    }
  }
}

TEST(AffineMod, BadModulusThrows) {
  EXPECT_THROW(affine_mod(1, 2, 0, 0), std::invalid_argument);
  EXPECT_THROW(affine_mod(1, 2, 0, -5), std::invalid_argument);
}

TEST(RankInSorted, PaperDefinition) {
  // Rank(min(S), S) = 0 and Rank(max(S), S) = |S| - 1.
  const std::vector<std::int64_t> s{2, 5, 7, 11};
  EXPECT_EQ(rank_in_sorted(2, s), 0u);
  EXPECT_EQ(rank_in_sorted(11, s), 3u);
  EXPECT_EQ(rank_in_sorted(7, s), 2u);
  // Elements not in S rank by how many members are smaller.
  EXPECT_EQ(rank_in_sorted(6, s), 2u);
  EXPECT_EQ(rank_in_sorted(0, s), 0u);
  EXPECT_EQ(rank_in_sorted(100, s), 4u);
}

TEST(WrapCount, ExactDecomposition) {
  // y = m*x + r - t*s must hold exactly.
  for (std::int64_t x = 0; x < 27; ++x) {
    for (std::int64_t r = 0; r < 3; ++r) {
      const std::int64_t t = wrap_count(x, 3, r, 27);
      const std::int64_t y = affine_mod(x, 3, r, 27);
      EXPECT_EQ(y, 3 * x + r - t * 27);
    }
  }
}

TEST(WrapCount, Lemma2RangeBase2) {
  // Lemma 2: in B_{2,h}, x < y implies y = 2x + r (t = 0) and x > y implies
  // y = 2x + r - 2^h (t = 1).
  const std::int64_t n = 32;
  for (std::int64_t x = 0; x < n; ++x) {
    for (std::int64_t r = 0; r < 2; ++r) {
      const std::int64_t y = affine_mod(x, 2, r, n);
      if (y == x) continue;  // self-loop, not an edge
      const std::int64_t t = wrap_count(x, 2, r, n);
      if (x < y) {
        EXPECT_EQ(t, 0) << "x=" << x << " r=" << r;
      } else {
        EXPECT_EQ(t, 1) << "x=" << x << " r=" << r;
      }
    }
  }
}

TEST(WrapCount, Lemma3RangeBaseM) {
  // Lemma 3: x < y implies t in {0..m-2}; x > y implies t in {1..m-1}.
  for (std::int64_t m : {3, 4, 5}) {
    const std::int64_t n = m * m * m;
    for (std::int64_t x = 0; x < n; ++x) {
      for (std::int64_t r = 0; r < m; ++r) {
        const std::int64_t y = affine_mod(x, m, r, n);
        if (y == x) continue;
        const std::int64_t t = wrap_count(x, m, r, n);
        if (x < y) {
          EXPECT_GE(t, 0);
          EXPECT_LE(t, m - 2);
        } else {
          EXPECT_GE(t, 1);
          EXPECT_LE(t, m - 1);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ftdb::ft
