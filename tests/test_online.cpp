// Tests for the online reconfiguration manager: sequential fault arrivals,
// link/bus normalization, budget enforcement, and hot repair.
#include <gtest/gtest.h>

#include <random>

#include "ft/ft_debruijn.hpp"
#include "ft/online.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

OnlineReconfigurator make(unsigned h, unsigned k) {
  return OnlineReconfigurator(ft_debruijn_base2(h, k), debruijn_base2(h));
}

TEST(Online, FreshMachineIsIdentityMapped) {
  auto mgr = make(4, 2);
  EXPECT_EQ(mgr.spare_budget(), 2u);
  EXPECT_EQ(mgr.faults_outstanding(), 0u);
  EXPECT_EQ(mgr.spares_remaining(), 2u);
  for (std::size_t x = 0; x < 16; ++x) EXPECT_EQ(mgr.mapping()[x], x);
  EXPECT_TRUE(mgr.invariant_holds());
}

TEST(Online, SizeMismatchThrows) {
  EXPECT_THROW(OnlineReconfigurator(debruijn_base2(3), debruijn_base2(4)),
               std::invalid_argument);
}

TEST(Online, NodeFaultShiftsMapping) {
  auto mgr = make(4, 2);
  EXPECT_EQ(mgr.apply({FaultKind::kNode, 5, 0}), EventStatus::kAccepted);
  EXPECT_EQ(mgr.mapping()[4], 4u);
  EXPECT_EQ(mgr.mapping()[5], 6u);
  EXPECT_TRUE(mgr.invariant_holds());
}

TEST(Online, DuplicateFaultIsRedundant) {
  auto mgr = make(4, 2);
  EXPECT_EQ(mgr.apply({FaultKind::kNode, 5, 0}), EventStatus::kAccepted);
  EXPECT_EQ(mgr.apply({FaultKind::kNode, 5, 0}), EventStatus::kRedundant);
  EXPECT_EQ(mgr.faults_outstanding(), 1u);
}

TEST(Online, BudgetEnforced) {
  auto mgr = make(4, 1);
  EXPECT_EQ(mgr.apply({FaultKind::kNode, 1, 0}), EventStatus::kAccepted);
  EXPECT_EQ(mgr.apply({FaultKind::kNode, 2, 0}), EventStatus::kBudgetExhausted);
  EXPECT_EQ(mgr.faults_outstanding(), 1u);  // rejected event did not apply
  EXPECT_TRUE(mgr.invariant_holds());
}

TEST(Online, LinkFaultRetiresOneEndpoint) {
  auto mgr = make(4, 2);
  EXPECT_EQ(mgr.apply({FaultKind::kLink, 3, 7}), EventStatus::kAccepted);
  EXPECT_EQ(mgr.retired(), (std::vector<NodeId>{3}));
  // A second fault on a link already covered by a retired endpoint is free.
  EXPECT_EQ(mgr.apply({FaultKind::kLink, 3, 6}), EventStatus::kRedundant);
  EXPECT_EQ(mgr.faults_outstanding(), 1u);
}

TEST(Online, LinkFaultBothEndpointsRetiredIsRedundant) {
  // Regression: a link fault whose endpoints are both already retired must be
  // absorbed as redundant — it must not retire a third node and must not
  // count against the spare budget a second time.
  auto mgr = make(4, 3);
  ASSERT_EQ(mgr.apply({FaultKind::kNode, 3, 0}), EventStatus::kAccepted);
  ASSERT_EQ(mgr.apply({FaultKind::kNode, 7, 0}), EventStatus::kAccepted);
  const auto retired_before = mgr.retired();
  const auto spares_before = mgr.spares_remaining();
  EXPECT_EQ(mgr.apply({FaultKind::kLink, 3, 7}), EventStatus::kRedundant);
  EXPECT_EQ(mgr.apply({FaultKind::kLink, 7, 3}), EventStatus::kRedundant);
  EXPECT_EQ(mgr.retired(), retired_before);
  EXPECT_EQ(mgr.spares_remaining(), spares_before);
  EXPECT_TRUE(mgr.invariant_holds());
}

TEST(Online, LinkFaultValidatesBothEndpoints) {
  auto mgr = make(4, 2);
  // An out-of-range endpoint is rejected up front, even when the other
  // endpoint's retirement would otherwise short-circuit the event.
  ASSERT_EQ(mgr.apply({FaultKind::kNode, 3, 0}), EventStatus::kAccepted);
  EXPECT_THROW(mgr.apply({FaultKind::kLink, 3, 99}), std::out_of_range);
  EXPECT_THROW(mgr.apply({FaultKind::kLink, 99, 3}), std::out_of_range);
  EXPECT_THROW(mgr.apply({FaultKind::kLink, 5, 5}), std::invalid_argument);
  EXPECT_EQ(mgr.faults_outstanding(), 1u);
}

TEST(Online, BusFaultRetiresDriver) {
  auto mgr = make(4, 2);
  EXPECT_EQ(mgr.apply({FaultKind::kBus, 9, 0}), EventStatus::kAccepted);
  EXPECT_EQ(mgr.retired(), (std::vector<NodeId>{9}));
}

TEST(Online, OutOfRangeThrows) {
  auto mgr = make(3, 1);
  EXPECT_THROW(mgr.apply({FaultKind::kNode, 99, 0}), std::out_of_range);
}

TEST(Online, RepairRestoresSpare) {
  auto mgr = make(4, 1);
  EXPECT_EQ(mgr.apply({FaultKind::kNode, 0, 0}), EventStatus::kAccepted);
  EXPECT_EQ(mgr.spares_remaining(), 0u);
  EXPECT_TRUE(mgr.repair(0));
  EXPECT_EQ(mgr.spares_remaining(), 1u);
  for (std::size_t x = 0; x < 16; ++x) EXPECT_EQ(mgr.mapping()[x], x);
  EXPECT_FALSE(mgr.repair(0));  // already healthy
}

TEST(Online, InverseMappingConsistent) {
  auto mgr = make(4, 2);
  mgr.apply({FaultKind::kNode, 4, 0});
  const auto inv = mgr.inverse_mapping();
  EXPECT_EQ(inv[4], kInvalidNode);
  for (std::size_t x = 0; x < 16; ++x) EXPECT_EQ(inv[mgr.mapping()[x]], x);
}

TEST(Online, StatusLineReflectsState) {
  auto mgr = make(3, 1);
  EXPECT_NE(mgr.status_line().find("0/1 spares"), std::string::npos);
  mgr.apply({FaultKind::kNode, 2, 0});
  EXPECT_NE(mgr.status_line().find("1/1 spares"), std::string::npos);
  EXPECT_NE(mgr.status_line().find("invariant OK"), std::string::npos);
}

TEST(Online, RandomFailRepairSoakMaintainsInvariant) {
  // Soak test: random interleavings of faults and repairs never violate the
  // Theorem 1 invariant and never over-consume the budget.
  const unsigned h = 5;
  const unsigned k = 3;
  auto mgr = make(h, k);
  std::mt19937_64 rng(123);
  std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>((1u << h) + k - 1));
  for (int event = 0; event < 500; ++event) {
    if (rng() % 3 == 0 && mgr.faults_outstanding() > 0) {
      const auto& retired = mgr.retired();
      std::uniform_int_distribution<std::size_t> which(0, retired.size() - 1);
      ASSERT_TRUE(mgr.repair(retired[which(rng)]));
    } else {
      const auto status = mgr.apply({FaultKind::kNode, pick(rng), 0});
      if (status == EventStatus::kBudgetExhausted) {
        EXPECT_EQ(mgr.spares_remaining(), 0u);
      }
    }
    ASSERT_TRUE(mgr.invariant_holds()) << "after event " << event;
    ASSERT_LE(mgr.faults_outstanding(), k);
  }
}

}  // namespace
}  // namespace ftdb
