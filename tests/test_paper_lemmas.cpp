// The paper's lemmas and theorem proofs as executable properties. These tests
// follow the paper's argument line by line, so a failure localizes exactly
// which step of the reproduction diverges.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "ft/ft_debruijn.hpp"
#include "ft/modmath.hpp"
#include "ft/reconfigure.hpp"
#include "topology/debruijn.hpp"
#include "topology/labels.hpp"

namespace ftdb {
namespace {

// Lemma 1: for a, b in T with a < b, delta_a = a - Rank(a,T) <= delta_b.
// Equivalently for the complement view used in reconfiguration: the monotone
// embedding's offsets are non-decreasing. We verify the literal statement.
TEST(Lemma1, RankDeficitMonotone) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    // Random finite T ⊂ [0, 60).
    std::vector<std::int64_t> t;
    for (std::int64_t v = 0; v < 60; ++v) {
      if (rng() % 3 == 0) t.push_back(v);
    }
    if (t.size() < 2) continue;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      const std::int64_t a = t[i];
      const std::int64_t b = t[i + 1];
      const auto delta_a = a - static_cast<std::int64_t>(ft::rank_in_sorted(a, t));
      const auto delta_b = b - static_cast<std::int64_t>(ft::rank_in_sorted(b, t));
      EXPECT_LE(delta_a, delta_b);
    }
  }
}

// Lemma 2: for every edge (x, y) of B_{2,h} with y = X(x,2,r,2^h):
// either x < y and y = 2x + r, or x > y and y = 2x + r - 2^h.
TEST(Lemma2, EveryEdgeWrapsAtMostOnce) {
  for (unsigned h = 3; h <= 8; ++h) {
    const std::int64_t n = static_cast<std::int64_t>(labels::ipow_checked(2, h));
    for (std::int64_t x = 0; x < n; ++x) {
      for (std::int64_t r = 0; r <= 1; ++r) {
        const std::int64_t y = ft::affine_mod(x, 2, r, n);
        if (y == x) continue;
        if (x < y) {
          EXPECT_EQ(y, 2 * x + r);
        } else {
          EXPECT_EQ(y, 2 * x + r - n);
        }
      }
    }
  }
}

// Lemma 3: in B_{m,h}, with y = m*x + r - t*m^h: x < y => t in {0..m-2};
// x > y => t in {1..m-1}.
TEST(Lemma3, WrapCountRanges) {
  for (std::int64_t m = 2; m <= 6; ++m) {
    for (unsigned h = 2; h <= 4; ++h) {
      const std::int64_t n = static_cast<std::int64_t>(labels::ipow_checked(m, h));
      for (std::int64_t x = 0; x < n; ++x) {
        for (std::int64_t r = 0; r < m; ++r) {
          const std::int64_t y = ft::affine_mod(x, m, r, n);
          if (y == x) continue;
          const std::int64_t t = ft::wrap_count(x, m, r, n);
          if (x < y) {
            EXPECT_GE(t, 0);
            EXPECT_LE(t, m - 2);
          } else {
            EXPECT_GE(t, 1);
            EXPECT_LE(t, m - 1);
          }
        }
      }
    }
  }
}

// Theorem 1's case analysis, replayed literally: for every fault set and every
// edge (x,y) of B_{2,h} with y = X(x,2,r,2^h), the offset
// s = r + delta_y - 2*delta_x (case x < y) or s = r + delta_y - 2*delta_x + k
// (case x > y) lies in S = {-k..k+1} and phi(y) = X(phi(x), 2, s, 2^h + k).
TEST(Theorem1, OffsetAlgebraExactlyAsInProof) {
  const std::int64_t n = 16;  // B_{2,4}
  for (unsigned k = 1; k <= 3; ++k) {
    const std::int64_t s_mod = n + k;
    std::mt19937_64 rng(k);
    for (int trial = 0; trial < 300; ++trial) {
      const FaultSet faults = FaultSet::random(static_cast<std::size_t>(s_mod), k, rng);
      const auto phi = monotone_embedding(faults);
      const auto delta = embedding_offsets(phi);
      for (std::int64_t x = 0; x < n; ++x) {
        for (std::int64_t r = 0; r <= 1; ++r) {
          const std::int64_t y = ft::affine_mod(x, 2, r, n);
          if (y == x) continue;
          const std::int64_t dx = delta[static_cast<std::size_t>(x)];
          const std::int64_t dy = delta[static_cast<std::size_t>(y)];
          std::int64_t s = 0;
          if (x < y) {
            s = r + dy - 2 * dx;
          } else {
            s = r + dy - 2 * dx + static_cast<std::int64_t>(k);
          }
          EXPECT_GE(s, -static_cast<std::int64_t>(k));
          EXPECT_LE(s, static_cast<std::int64_t>(k) + 1);
          EXPECT_EQ(static_cast<std::int64_t>(phi[static_cast<std::size_t>(y)]),
                    ft::affine_mod(phi[static_cast<std::size_t>(x)], 2, s, s_mod));
        }
      }
    }
  }
}

// Theorem 2's offset algebra for general m: s = kt + r + delta_y - m*delta_x
// lies in {(m-1)(-k) .. (m-1)(k+1)} and phi(y) = X(phi(x), m, s, m^h + k).
TEST(Theorem2, OffsetAlgebraExactlyAsInProof) {
  for (std::int64_t m : {3, 4}) {
    const unsigned h = 3;
    const std::int64_t n = static_cast<std::int64_t>(labels::ipow_checked(m, h));
    for (unsigned k = 1; k <= 2; ++k) {
      const std::int64_t s_mod = n + k;
      std::mt19937_64 rng(static_cast<std::uint64_t>(m * 100 + k));
      for (int trial = 0; trial < 100; ++trial) {
        const FaultSet faults = FaultSet::random(static_cast<std::size_t>(s_mod), k, rng);
        const auto phi = monotone_embedding(faults);
        const auto delta = embedding_offsets(phi);
        for (std::int64_t x = 0; x < n; ++x) {
          for (std::int64_t r = 0; r < m; ++r) {
            const std::int64_t y = ft::affine_mod(x, m, r, n);
            if (y == x) continue;
            const std::int64_t t = ft::wrap_count(x, m, r, n);
            const std::int64_t dx = delta[static_cast<std::size_t>(x)];
            const std::int64_t dy = delta[static_cast<std::size_t>(y)];
            const std::int64_t s = static_cast<std::int64_t>(k) * t + r + dy - m * dx;
            EXPECT_GE(s, (m - 1) * -static_cast<std::int64_t>(k));
            EXPECT_LE(s, (m - 1) * (static_cast<std::int64_t>(k) + 1));
            EXPECT_EQ(static_cast<std::int64_t>(phi[static_cast<std::size_t>(y)]),
                      ft::affine_mod(phi[static_cast<std::size_t>(x)], m, s, s_mod));
          }
        }
      }
    }
  }
}

// The degree argument of Section III.A: node a of B^k_{2,h} is adjacent to at
// most 2k+2 forward-block nodes and at most k+1 halving-block nodes in each
// direction, totaling <= 4k+4 — cross-checked against the generated graph.
TEST(DegreeArgument, ForwardBlockIs2kPlus2Wide) {
  const unsigned h = 5;
  for (unsigned k = 0; k <= 4; ++k) {
    const Graph g = ft_debruijn_base2(h, k);
    const std::int64_t s = static_cast<std::int64_t>(g.num_nodes());
    for (std::int64_t a = 0; a < s; ++a) {
      // Forward neighbors: X(a,2,r,s) for r in [-k, k+1] — at most 2k+2
      // distinct values.
      std::set<std::int64_t> forward;
      for (std::int64_t r = -static_cast<std::int64_t>(k);
           r <= static_cast<std::int64_t>(k) + 1; ++r) {
        forward.insert(ft::affine_mod(a, 2, r, s));
      }
      EXPECT_LE(forward.size(), 2u * k + 2);
      // Every neighbor of a in the graph is either in a's forward block or
      // has a in its own forward block.
      for (NodeId b : g.neighbors(static_cast<NodeId>(a))) {
        bool explained = forward.count(b) > 0;
        if (!explained) {
          for (std::int64_t r = -static_cast<std::int64_t>(k);
               r <= static_cast<std::int64_t>(k) + 1 && !explained; ++r) {
            explained = ft::affine_mod(b, 2, r, s) == a;
          }
        }
        EXPECT_TRUE(explained) << "a=" << a << " b=" << +b;
      }
    }
  }
}

}  // namespace
}  // namespace ftdb
