// Randomized cross-validation against independent oracles: the CSR graph vs
// an adjacency-matrix oracle, BFS distances vs Floyd-Warshall, VF2 vs
// brute-force permutation search, and the FT edge predicate vs a from-scratch
// reimplementation. Seeds are fixed; failures print the seed context.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <vector>

#include "ft/ft_debruijn.hpp"
#include "ft/modmath.hpp"
#include "ft/reconfigure.hpp"
#include "ft/tolerance.hpp"
#include "graph/algorithms.hpp"
#include "graph/embedding.hpp"
#include "graph/graph.hpp"
#include "sim/network.hpp"
#include "sim/routing.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

Graph random_graph(std::size_t n, double p, std::mt19937_64& rng,
                   std::vector<std::vector<bool>>* matrix_out = nullptr) {
  std::bernoulli_distribution coin(p);
  GraphBuilder b(n);
  std::vector<std::vector<bool>> matrix(n, std::vector<bool>(n, false));
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (coin(rng)) {
        b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
        matrix[u][v] = matrix[v][u] = true;
      }
    }
  }
  if (matrix_out != nullptr) *matrix_out = std::move(matrix);
  return b.build();
}

TEST(RandomizedOracle, CsrMatchesAdjacencyMatrix) {
  std::mt19937_64 rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 5 + rng() % 30;
    std::vector<std::vector<bool>> matrix;
    const Graph g = random_graph(n, 0.3, rng, &matrix);
    std::size_t edge_count = 0;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        EXPECT_EQ(g.has_edge(static_cast<NodeId>(u), static_cast<NodeId>(v)),
                  matrix[u][v])
            << "trial " << trial << " u=" << u << " v=" << v;
        if (u < v && matrix[u][v]) ++edge_count;
      }
      std::size_t row_degree = 0;
      for (std::size_t v = 0; v < n; ++v) row_degree += matrix[u][v] ? 1 : 0;
      EXPECT_EQ(g.degree(static_cast<NodeId>(u)), row_degree);
    }
    EXPECT_EQ(g.num_edges(), edge_count);
  }
}

TEST(RandomizedOracle, BfsMatchesFloydWarshall) {
  std::mt19937_64 rng(202);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 4 + rng() % 20;
    const Graph g = random_graph(n, 0.25, rng);
    // Floyd-Warshall oracle.
    constexpr std::uint32_t inf = kUnreachable;
    std::vector<std::vector<std::uint32_t>> dist(n, std::vector<std::uint32_t>(n, inf));
    for (std::size_t v = 0; v < n; ++v) dist[v][v] = 0;
    for (const Edge& e : g.edges()) dist[e.u][e.v] = dist[e.v][e.u] = 1;
    for (std::size_t m = 0; m < n; ++m) {
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = 0; v < n; ++v) {
          if (dist[u][m] != inf && dist[m][v] != inf) {
            dist[u][v] = std::min(dist[u][v], dist[u][m] + dist[m][v]);
          }
        }
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      const auto bfs = bfs_distances(g, static_cast<NodeId>(s));
      for (std::size_t t = 0; t < n; ++t) {
        EXPECT_EQ(bfs[t], dist[s][t]) << "trial " << trial << " s=" << s << " t=" << t;
      }
    }
  }
}

TEST(RandomizedOracle, RoutingTableMatchesFloydWarshall) {
  std::mt19937_64 rng(303);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng() % 16;
    const Graph g = random_graph(n, 0.35, rng);
    const sim::RoutingTable table(g);
    for (std::size_t s = 0; s < n; ++s) {
      const auto bfs = bfs_distances(g, static_cast<NodeId>(s));
      for (std::size_t t = 0; t < n; ++t) {
        if (bfs[t] == kUnreachable) {
          EXPECT_FALSE(table.reachable(static_cast<NodeId>(t), static_cast<NodeId>(s)));
        } else {
          EXPECT_EQ(table.distance(static_cast<NodeId>(t), static_cast<NodeId>(s)), bfs[t]);
        }
      }
    }
  }
}

bool brute_force_monomorphism(const Graph& pattern, const Graph& host) {
  // Only for tiny patterns: try every injective mapping.
  std::vector<NodeId> hosts(host.num_nodes());
  for (std::size_t i = 0; i < hosts.size(); ++i) hosts[i] = static_cast<NodeId>(i);
  std::vector<NodeId> chosen;
  std::vector<bool> used(host.num_nodes(), false);
  // Recursive lambda via explicit stack of choices.
  std::function<bool(std::size_t)> rec = [&](std::size_t depth) -> bool {
    if (depth == pattern.num_nodes()) return true;
    for (NodeId h : hosts) {
      if (used[h]) continue;
      bool ok = true;
      for (NodeId q : pattern.neighbors(static_cast<NodeId>(depth))) {
        if (q < depth && !host.has_edge(h, chosen[q])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      used[h] = true;
      chosen.push_back(h);
      if (rec(depth + 1)) return true;
      chosen.pop_back();
      used[h] = false;
    }
    return false;
  };
  return rec(0);
}

TEST(RandomizedOracle, Vf2MatchesBruteForce) {
  std::mt19937_64 rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t pn = 3 + rng() % 3;  // pattern of 3..5 nodes
    const std::size_t hn = 5 + rng() % 4;  // host of 5..8 nodes
    const Graph pattern = random_graph(pn, 0.5, rng);
    const Graph host = random_graph(hn, 0.45, rng);
    const bool vf2 = find_subgraph_embedding(pattern, host).has_value();
    const bool brute = brute_force_monomorphism(pattern, host);
    EXPECT_EQ(vf2, brute) << "trial " << trial;
  }
}

TEST(RandomizedOracle, FtEdgePredicateReimplementation) {
  // Independent reimplementation of the B^k_{m,h} edge rule, compared
  // edge-by-edge with the library's generator.
  std::mt19937_64 rng(505);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t m = 2 + rng() % 3;
    const unsigned h = 2 + static_cast<unsigned>(rng() % 2);
    const unsigned k = static_cast<unsigned>(rng() % 4);
    const Graph g = ft_debruijn_graph({.base = m, .digits = h, .spares = k});
    const auto s = static_cast<std::int64_t>(g.num_nodes());
    const std::int64_t lo = static_cast<std::int64_t>(m - 1) * -static_cast<std::int64_t>(k);
    const std::int64_t hi = static_cast<std::int64_t>(m - 1) * (static_cast<std::int64_t>(k) + 1);
    for (std::int64_t x = 0; x < s; ++x) {
      for (std::int64_t y = x + 1; y < s; ++y) {
        bool expected = false;
        for (std::int64_t r = lo; r <= hi && !expected; ++r) {
          if (ft::affine_mod(x, static_cast<std::int64_t>(m), r, s) == y ||
              ft::affine_mod(y, static_cast<std::int64_t>(m), r, s) == x) {
            expected = true;
          }
        }
        EXPECT_EQ(g.has_edge(static_cast<NodeId>(x), static_cast<NodeId>(y)), expected)
            << "m=" << m << " h=" << h << " k=" << k << " x=" << x << " y=" << y;
      }
    }
  }
}

TEST(RandomizedFaultInjection, ReconfigurationYieldsHealthyDeBruijn) {
  // Theorem 1/2 exercised through the reconfiguration path: for random fault
  // sets of size <= k, the monotone embedding must map every edge of B_{m,h}
  // onto a surviving edge of B^k_{m,h}, and its offsets must obey Lemma 1
  // (non-decreasing, within [0, |faults|]).
  std::mt19937_64 rng(20260729);
  const struct {
    std::uint64_t m;
    unsigned h;
    unsigned k;
  } cases[] = {{2, 4, 1}, {2, 4, 3}, {2, 5, 2}, {3, 3, 2}, {4, 3, 2}, {2, 6, 4}};
  for (const auto& c : cases) {
    const Graph target = debruijn_graph({.base = c.m, .digits = c.h});
    const Graph ft = ft_debruijn_graph({.base = c.m, .digits = c.h, .spares = c.k});
    ASSERT_EQ(ft.num_nodes(), target.num_nodes() + c.k);
    for (int trial = 0; trial < 25; ++trial) {
      const std::size_t f = rng() % (c.k + 1);
      const FaultSet faults = FaultSet::random(ft.num_nodes(), f, rng);

      Edge violation{};
      EXPECT_TRUE(monotone_embedding_survives(target, ft, faults, &violation))
          << "m=" << c.m << " h=" << c.h << " k=" << c.k << " trial=" << trial
          << " |F|=" << f << " violated edge (" << violation.u << ", " << violation.v
          << ")";

      // phi maps all universe - |F| survivors; the target occupies the first
      // num_nodes() logical slots.
      const std::vector<NodeId> phi = monotone_embedding(faults);
      ASSERT_EQ(phi.size(), ft.num_nodes() - f);
      ASSERT_GE(phi.size(), target.num_nodes());
      const std::vector<std::uint32_t> offsets = embedding_offsets(phi);
      std::uint32_t prev = 0;
      for (std::size_t x = 0; x < target.num_nodes(); ++x) {
        EXPECT_FALSE(faults.is_faulty(phi[x]));
        EXPECT_LE(offsets[x], f) << "x=" << x;
        EXPECT_GE(offsets[x], prev) << "Lemma 1: offsets non-decreasing, x=" << x;
        prev = offsets[x];
      }
    }
  }
}

TEST(RandomizedFaultInjection, ReconfiguredMachinePresentsFullTarget) {
  // Operational form of the same claim: after reconfiguration the simulated
  // machine's live logical connectivity is all of B_{m,h} — every logical
  // link is up, so routing sees a healthy machine.
  std::mt19937_64 rng(777001);
  const struct {
    std::uint64_t m;
    unsigned h;
    unsigned k;
  } cases[] = {{2, 5, 3}, {3, 3, 2}, {2, 6, 2}};
  for (const auto& c : cases) {
    const Graph target = debruijn_graph({.base = c.m, .digits = c.h});
    const Graph ft = ft_debruijn_graph({.base = c.m, .digits = c.h, .spares = c.k});
    for (int trial = 0; trial < 10; ++trial) {
      const std::size_t f = rng() % (c.k + 1);
      const FaultSet faults = FaultSet::random(ft.num_nodes(), f, rng);
      const sim::Machine machine =
          sim::Machine::reconfigured(ft, faults, target.num_nodes());
      const Graph live = machine.live_logical_graph(target);
      ASSERT_EQ(live.num_nodes(), target.num_nodes());
      EXPECT_EQ(live.num_edges(), target.num_edges())
          << "m=" << c.m << " h=" << c.h << " k=" << c.k << " trial=" << trial
          << " |F|=" << f;
      for (NodeId u = 0; u < target.num_nodes(); ++u) {
        for (const NodeId v : target.neighbors(u)) {
          if (u < v) {
            EXPECT_TRUE(machine.logical_link_up(u, v))
                << "logical link (" << u << ", " << v << ") down after reconfig";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ftdb
