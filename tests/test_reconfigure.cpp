// Tests for the reconfiguration algorithm of Section III.A: the monotone rank
// embedding and its offset properties (Lemma 1).
#include <gtest/gtest.h>

#include <random>

#include "ft/reconfigure.hpp"

namespace ftdb {
namespace {

TEST(FaultSet, NormalizesInput) {
  FaultSet f(10, {7, 3, 3, 7, 1});
  EXPECT_EQ(f.count(), 3u);
  EXPECT_EQ(f.nodes(), (std::vector<NodeId>{1, 3, 7}));
  EXPECT_TRUE(f.is_faulty(3));
  EXPECT_FALSE(f.is_faulty(2));
}

TEST(FaultSet, OutOfRangeThrows) { EXPECT_THROW(FaultSet(5, {5}), std::out_of_range); }

TEST(FaultSet, SurvivorsComplement) {
  FaultSet f(6, {0, 4});
  EXPECT_EQ(f.survivors(), (std::vector<NodeId>{1, 2, 3, 5}));
}

TEST(FaultSet, RandomIsUniformSample) {
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    FaultSet f = FaultSet::random(20, 5, rng);
    EXPECT_EQ(f.count(), 5u);
    for (NodeId v : f.nodes()) EXPECT_LT(v, 20u);
  }
}

TEST(FaultSet, RandomTooManyThrows) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(FaultSet::random(3, 4, rng), std::invalid_argument);
}

TEST(MonotoneEmbedding, PaperExample) {
  // "node 0 is mapped to the first nonfaulty node, and node 2^h - 1 to the
  // last nonfaulty node."
  FaultSet f(17, {8});
  auto phi = monotone_embedding(f);
  ASSERT_EQ(phi.size(), 16u);
  EXPECT_EQ(phi.front(), 0u);
  EXPECT_EQ(phi.back(), 16u);
  EXPECT_EQ(phi[7], 7u);
  EXPECT_EQ(phi[8], 9u);  // skips the fault
}

TEST(MonotoneEmbedding, StrictlyIncreasing) {
  FaultSet f(30, {2, 9, 15, 16, 29});
  auto phi = monotone_embedding(f);
  for (std::size_t i = 0; i + 1 < phi.size(); ++i) EXPECT_LT(phi[i], phi[i + 1]);
}

TEST(EmbeddingOffsets, Lemma1_NonDecreasingAndBounded) {
  // Lemma 1 in executable form: delta(x) = phi(x) - x is non-decreasing and
  // 0 <= delta(x) <= k for every fault set.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t universe = 40;
    const std::size_t k = static_cast<std::size_t>(trial % 6);
    FaultSet f = FaultSet::random(universe, k, rng);
    auto delta = embedding_offsets(monotone_embedding(f));
    for (std::size_t x = 0; x < delta.size(); ++x) {
      EXPECT_LE(delta[x], k);
      if (x > 0) {
        EXPECT_GE(delta[x], delta[x - 1]);
      }
    }
  }
}

TEST(EmbeddingOffsets, DeltaCountsFaultsBelow) {
  // delta(x) equals the number of faulty nodes at positions <= phi(x).
  FaultSet f(12, {1, 5, 6});
  auto phi = monotone_embedding(f);
  auto delta = embedding_offsets(phi);
  for (std::size_t x = 0; x < phi.size(); ++x) {
    std::uint32_t below = 0;
    for (NodeId v : f.nodes()) {
      if (v < phi[x]) ++below;
    }
    EXPECT_EQ(delta[x], below);
  }
}

TEST(InverseEmbedding, RoundTrip) {
  FaultSet f(10, {0, 9});
  auto phi = monotone_embedding(f);
  auto inv = inverse_embedding(phi, 10);
  EXPECT_EQ(inv[0], kInvalidNode);
  EXPECT_EQ(inv[9], kInvalidNode);
  for (std::size_t x = 0; x < phi.size(); ++x) EXPECT_EQ(inv[phi[x]], x);
}

TEST(MonotoneEmbedding, NoFaultsIsIdentity) {
  FaultSet f(8, {});
  auto phi = monotone_embedding(f);
  for (std::size_t x = 0; x < 8; ++x) EXPECT_EQ(phi[x], x);
}

}  // namespace
}  // namespace ftdb
