// Tests for routing through the reconfiguration embedding: dilation-1
// translation of logical routes onto the physical fabric.
#include <gtest/gtest.h>

#include <random>

#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "graph/algorithms.hpp"
#include "graph/subgraph.hpp"
#include "sim/reconfigured_routing.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::sim {
namespace {

Machine make_reconfigured(unsigned h, unsigned k, const std::vector<NodeId>& faults) {
  const Graph ft = ft_debruijn_base2(h, k);
  return Machine::reconfigured(ft, FaultSet(ft.num_nodes(), faults), std::size_t{1} << h);
}

TEST(PhysicalRoute, TranslatesThroughEmbedding) {
  const Machine m = make_reconfigured(3, 1, {2});
  // Logical nodes 2.. shift up by one physical slot.
  const auto phys = physical_route(m, {0, 1, 2, 3});
  EXPECT_EQ(phys, (std::vector<NodeId>{0, 1, 3, 4}));
}

TEST(PhysicalRoute, OutOfRangeThrows) {
  const Machine m = make_reconfigured(3, 1, {2});
  EXPECT_THROW(physical_route(m, {9}), std::out_of_range);
}

TEST(PhysicalRouteIsLive, DetectsDeadNodesAndMissingLinks) {
  const Machine m = make_reconfigured(3, 1, {2});
  EXPECT_FALSE(physical_route_is_live(m, {}));
  EXPECT_FALSE(physical_route_is_live(m, {0, 2}));  // node 2 is dead
  EXPECT_FALSE(physical_route_is_live(m, {0, 7}));  // not a B^1_{2,3} edge
  EXPECT_TRUE(physical_route_is_live(m, {0, 1}));
}

class RoutingOnReconfigured : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(RoutingOnReconfigured, EveryShiftRouteIsLiveOnEveryFaultSet) {
  const auto [h, k] = GetParam();
  const Graph ft = ft_debruijn_base2(h, k);
  const std::size_t n = std::size_t{1} << h;
  std::mt19937_64 rng(h * 10 + k);
  for (int trial = 0; trial < 10; ++trial) {
    const FaultSet faults = FaultSet::random(ft.num_nodes(), k, rng);
    const Machine m = Machine::reconfigured(ft, faults, n);
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        const auto route = debruijn_route_on_machine(m, 2, h, s, d);
        EXPECT_TRUE(physical_route_is_live(m, route))
            << "s=" << +s << " d=" << +d << " trial=" << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoutingOnReconfigured,
                         ::testing::Values(std::pair<unsigned, unsigned>{3, 1},
                                           std::pair<unsigned, unsigned>{4, 2},
                                           std::pair<unsigned, unsigned>{5, 3}));

TEST(SeRouteOnMachine, LiveOnNaturalFtMachine) {
  // SE routes through the natural-labeling FT-SE machine: every hop of the
  // logical SE route must map to a live physical link after reconfiguration.
  const unsigned h = 4;
  const unsigned k = 2;
  const auto se_machine = ftdb::ft_shuffle_exchange_natural(h, k);
  std::mt19937_64 rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    const FaultSet faults = FaultSet::random(se_machine.ft_graph.num_nodes(), k, rng);
    const Machine m = Machine::reconfigured(se_machine.ft_graph, faults, std::size_t{1} << h);
    for (NodeId s = 0; s < (1u << h); s += 3) {
      for (NodeId d = 0; d < (1u << h); d += 5) {
        const auto route = se_route_on_machine(m, h, s, d);
        EXPECT_TRUE(physical_route_is_live(m, route)) << "s=" << +s << " d=" << +d;
      }
    }
  }
}

TEST(MaxRouteStretch, HealthyMachineIsExactlyOne) {
  // With no faults the physical graph restricted to logical nodes contains
  // the target, and shift routes are at most h while shortest paths can be
  // shorter — stretch is bounded by h / 1 but the *average* case matters;
  // here we only pin that the function runs and is >= 1.
  const Machine m = make_reconfigured(4, 2, {});
  const double stretch = max_route_stretch(m, 2, 4);
  EXPECT_GE(stretch, 1.0);
  EXPECT_LE(stretch, 4.0);  // logical routes never exceed h hops
}

TEST(MaxRouteStretch, BoundedAfterFaults) {
  const Machine m = make_reconfigured(4, 2, {5, 11});
  const double stretch = max_route_stretch(m, 2, 4);
  // The FT graph is denser than the target, so physical shortest paths can
  // be shorter than logical routes — but never by more than a factor h.
  EXPECT_GE(stretch, 1.0);
  EXPECT_LE(stretch, 4.0);
}

TEST(MaxRouteStretch, SampledOverAllPairsEqualsTheFullAudit) {
  const Machine m = make_reconfigured(4, 2, {5, 11});
  std::vector<std::pair<NodeId, NodeId>> all_pairs;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s != d) all_pairs.emplace_back(s, d);
    }
  }
  EXPECT_DOUBLE_EQ(max_route_stretch_sampled(m, 2, 4, all_pairs), max_route_stretch(m, 2, 4));
}

TEST(MaxRouteStretch, SampledSubsetNeverExceedsTheFullAuditAndIgnoresSelfPairs) {
  const Machine m = make_reconfigured(4, 2, {2, 9});
  const double full = max_route_stretch(m, 2, 4);
  const std::vector<std::pair<NodeId, NodeId>> subset{{0, 15}, {3, 3}, {7, 12}, {15, 1}, {4, 8}};
  const double sampled = max_route_stretch_sampled(m, 2, 4, subset);
  EXPECT_GE(sampled, 1.0);
  EXPECT_LE(sampled, full + 1e-12);
  EXPECT_DOUBLE_EQ(max_route_stretch_sampled(m, 2, 4, {}), 1.0);
}

/// Brute-force stretch oracle: one plain BFS per logical source on the live
/// logical graph (numerators) and one per source on the survivor-induced
/// physical graph (denominators). Deliberately avoids the router and the
/// bit-parallel batch kernel that the production audit uses.
double stretch_oracle(const Machine& m, const Graph& target) {
  const Graph logical = m.live_logical_graph(target);
  std::vector<NodeId> live;
  for (NodeId v = 0; v < m.physical.num_nodes(); ++v) {
    if (!m.dead[v]) live.push_back(v);
  }
  const InducedSubgraph survivors = induced_subgraph(m.physical, live);
  std::vector<NodeId> p2s(m.physical.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < survivors.to_original.size(); ++i) {
    p2s[survivors.to_original[i]] = static_cast<NodeId>(i);
  }

  double worst = 1.0;
  const std::size_t n = m.num_logical();
  for (NodeId src = 0; src < n; ++src) {
    const auto logical_dist = bfs_distances(logical, src);
    const auto phys_dist = bfs_distances(survivors.graph, p2s[m.to_physical[src]]);
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst || logical_dist[dst] == kUnreachable) continue;
      const std::uint32_t shortest = phys_dist[p2s[m.to_physical[dst]]];
      if (shortest == 0 || shortest == kUnreachable) continue;
      worst = std::max(worst,
                       static_cast<double>(logical_dist[dst]) / static_cast<double>(shortest));
    }
  }
  return worst;
}

TEST(MaxRouteStretchSe, HopExactAgainstDoubleBfsOracle) {
  // The campaign's shuffle-exchange stretch metric must be hop-exact: the
  // batched survivor sweeps and the logical router have to agree with the
  // naive per-source double-BFS audit on every fault set.
  const unsigned h = 4;
  const unsigned k = 2;
  const auto se = ftdb::ft_shuffle_exchange_natural(h, k);
  std::mt19937_64 rng(1992);
  for (int trial = 0; trial < 8; ++trial) {
    const FaultSet faults = FaultSet::random(se.ft_graph.num_nodes(), k, rng);
    const Machine m = Machine::reconfigured(se.ft_graph, faults, std::size_t{1} << h);
    EXPECT_DOUBLE_EQ(max_route_stretch_se(m, h),
                     stretch_oracle(m, shuffle_exchange_graph(h)))
        << "trial=" << trial;
  }
}

TEST(MaxRouteStretchSe, SampledOverAllPairsEqualsTheFullAudit) {
  const unsigned h = 4;
  const auto se = ftdb::ft_shuffle_exchange_natural(h, 2);
  std::mt19937_64 rng(77);
  const FaultSet faults = FaultSet::random(se.ft_graph.num_nodes(), 2, rng);
  const Machine m = Machine::reconfigured(se.ft_graph, faults, std::size_t{1} << h);
  std::vector<std::pair<NodeId, NodeId>> all_pairs;
  for (NodeId s = 0; s < (1u << h); ++s) {
    for (NodeId d = 0; d < (1u << h); ++d) {
      if (s != d) all_pairs.emplace_back(s, d);
    }
  }
  EXPECT_DOUBLE_EQ(max_route_stretch_se_sampled(m, h, all_pairs), max_route_stretch_se(m, h));
  EXPECT_DOUBLE_EQ(max_route_stretch_se_sampled(m, h, {}), 1.0);
}

TEST(MaxRouteStretchDeBruijn, HopExactAgainstDoubleBfsOracle) {
  // Same oracle, de Bruijn family: pins the shared core from the other entry
  // point so a regression in either target builder shows up here.
  std::mt19937_64 rng(42);
  const Graph ft = ft_debruijn_base2(4, 2);
  for (int trial = 0; trial < 4; ++trial) {
    const FaultSet faults = FaultSet::random(ft.num_nodes(), 2, rng);
    const Machine m = Machine::reconfigured(ft, faults, 16);
    EXPECT_DOUBLE_EQ(max_route_stretch(m, 2, 4), stretch_oracle(m, debruijn_base2(4)))
        << "trial=" << trial;
  }
}

TEST(MachineLogicalRouter, PicksImplicitExactlyWhenDilationOneSurvives) {
  const Graph target = debruijn_base2(4);
  // Size-aware auto policy disabled: the backend choice then tracks the
  // machine's shape alone, which is what this test pins down. (With default
  // options a 16-node machine gets the table — see MakeRouter's policy test.)
  RouterOptions shape_only;
  shape_only.implicit_min_nodes = 0;
  // Reconfigured within budget: implicit.
  const Machine ok = make_reconfigured(4, 2, {5, 11});
  EXPECT_EQ(machine_logical_router(ok, target, shape_only)->backend(), RouterBackend::Implicit);
  EXPECT_EQ(machine_logical_router(ok, target)->backend(), RouterBackend::Table);
  // Degraded bare target: holes in the logical graph, fallback.
  const Machine degraded =
      Machine::direct_with_faults(debruijn_base2(4), FaultSet(16, {5, 11}));
  EXPECT_NE(machine_logical_router(degraded, target, shape_only)->backend(),
            RouterBackend::Implicit);
}

}  // namespace
}  // namespace ftdb::sim
