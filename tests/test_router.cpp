// Router equivalence: the three backends (implicit algebra, run-length
// compressed tables, BFS table slab) implement one canonical policy —
// shortest paths stepped through the lowest-id closer neighbor — so they must
// be hop-for-hop identical wherever they all apply, and all must agree with a
// plain BFS oracle. Covered: healthy B_{m,h} and SE_h over the (m,h) grid,
// reconfigured machines (the dilation-1 case where the implicit backend keeps
// working), degraded machines (the fallback case), shape detection /
// auto-selection, and next-hop totality + termination.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "ft/ft_debruijn.hpp"
#include "ft/ft_shuffle_exchange.hpp"
#include "graph/algorithms.hpp"
#include "sim/network.hpp"
#include "sim/reconfigured_routing.hpp"
#include "sim/router.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::sim {
namespace {

RouterOptions forced(RouterOptions::Backend backend) {
  RouterOptions options;
  options.backend = backend;
  return options;
}

/// Auto selection with the size-aware table preference switched off — the
/// historical shape-implies-implicit behavior, used where a test's subject is
/// the shape detection itself (the grids here are all far below the 2^12
/// policy threshold).
RouterOptions auto_implicit() {
  RouterOptions options;
  options.implicit_min_nodes = 0;
  return options;
}

/// All-pairs agreement of `routers` with each other and with the BFS oracle:
/// identical distances, hop-for-hop identical paths, and next-hop totality
/// (every hop is a real neighbor strictly closer to the destination).
void expect_equivalent(const Graph& g, const std::vector<const Router*>& routers,
                       const std::string& context) {
  const std::size_t n = g.num_nodes();
  for (const Router* r : routers) ASSERT_EQ(r->num_nodes(), n) << context;
  for (NodeId src = 0; src < n; ++src) {
    const auto oracle = bfs_distances(g, src);
    for (NodeId dst = 0; dst < n; ++dst) {
      const std::uint32_t expected = oracle[dst];
      std::vector<NodeId> reference_path;
      for (std::size_t i = 0; i < routers.size(); ++i) {
        const Router* r = routers[i];
        ASSERT_EQ(r->distance(dst, src), expected)
            << context << " backend=" << router_backend_name(r->backend()) << " " << +src
            << "->" << +dst;
        ASSERT_EQ(r->reachable(dst, src), expected != kUnreachable)
            << context << " backend=" << router_backend_name(r->backend());
        const std::vector<NodeId> path = r->path(src, dst);
        if (expected == kUnreachable) {
          EXPECT_TRUE(path.empty()) << context;
          EXPECT_EQ(r->next_hop(dst, src), kInvalidNode) << context;
          continue;
        }
        // Totality + termination: the walk ends at dst in exactly
        // distance() hops, every step a neighbor one unit closer.
        ASSERT_EQ(path.size(), static_cast<std::size_t>(expected) + 1) << context;
        ASSERT_EQ(path.front(), src) << context;
        ASSERT_EQ(path.back(), dst) << context;
        for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
          ASSERT_TRUE(g.has_edge(path[hop], path[hop + 1]))
              << context << " backend=" << router_backend_name(r->backend());
          // On a shortest path, the node after `hop` steps sits exactly
          // `hop` from the source — every step makes strict progress.
          ASSERT_EQ(oracle[path[hop]], static_cast<std::uint32_t>(hop)) << context;
        }
        // Hop-for-hop identity across backends.
        if (i == 0) {
          reference_path = path;
        } else {
          EXPECT_EQ(path, reference_path)
              << context << " backend=" << router_backend_name(r->backend()) << " vs "
              << router_backend_name(routers[0]->backend()) << " " << +src << "->" << +dst;
        }
      }
    }
  }
  // Batched queries: route_many / distance_many over every pair must be
  // hop-for-hop identical to the scalar loops on every backend (the implicit
  // backend's override runs witness-seeded scans through its memo cache —
  // run the batch twice so warm cache hits are exercised too).
  std::vector<NodeId> dests, nodes, hops(n * n);
  std::vector<std::uint32_t> dists(n * n);
  dests.reserve(n * n);
  nodes.reserve(n * n);
  for (NodeId dst = 0; dst < n; ++dst) {
    for (NodeId src = 0; src < n; ++src) {
      dests.push_back(dst);
      nodes.push_back(src);
    }
  }
  for (const Router* r : routers) {
    for (int round = 0; round < 2; ++round) {
      r->route_many(dests, nodes, hops);
      r->distance_many(dests, nodes, dists);
      for (std::size_t i = 0; i < dests.size(); ++i) {
        ASSERT_EQ(hops[i], r->next_hop(dests[i], nodes[i]))
            << context << " backend=" << router_backend_name(r->backend()) << " round=" << round
            << " " << +nodes[i] << "->" << +dests[i];
        ASSERT_EQ(dists[i], r->distance(dests[i], nodes[i]))
            << context << " backend=" << router_backend_name(r->backend()) << " round=" << round;
      }
    }
  }
}

struct Params {
  std::uint64_t m;
  unsigned h;
};

class DeBruijnRouterGrid : public ::testing::TestWithParam<Params> {};

TEST_P(DeBruijnRouterGrid, HealthyBackendsMatchOracleHopForHop) {
  const auto [m, h] = GetParam();
  const Graph g = debruijn_graph({.base = m, .digits = h});

  // Below the size-aware threshold Auto prefers the table; with the policy
  // switched off the shape detection must still land on the implicit algebra.
  ASSERT_EQ(make_router(g)->backend(), RouterBackend::Table)
      << "small healthy B_{m,h} must auto-select the table";
  const auto auto_router = make_router(g, auto_implicit());
  ASSERT_EQ(auto_router->backend(), RouterBackend::Implicit)
      << "healthy B_{m,h} must be recognized as implicit-routable";
  EXPECT_EQ(auto_router->memory_bytes(), 0u);

  const TableRouter table(g);
  const CompressedRouter compressed(g);
  expect_equivalent(g, {&table, auto_router.get(), &compressed},
                    "B(m=" + std::to_string(m) + ",h=" + std::to_string(h) + ")");

  // On a healthy shape the compressed backend rides the algebraic reference
  // with zero exceptions — O(N + E) memory, far under the N^2 slab.
  EXPECT_TRUE(compressed.uses_reference_shape());
  EXPECT_EQ(compressed.num_exceptions(), 0u);
  if (g.num_nodes() >= 64) EXPECT_LT(compressed.memory_bytes(), table.memory_bytes());
}

TEST_P(DeBruijnRouterGrid, ReconfiguredDilationOneKeepsImplicitRouting) {
  const auto [m, h] = GetParam();
  const unsigned k = 2;
  const Graph target = debruijn_graph({.base = m, .digits = h});
  const Graph ft = ft_debruijn_graph({.base = m, .digits = h, .spares = k});
  std::mt19937_64 rng(1000 * m + h);
  for (int trial = 0; trial < 3; ++trial) {
    const FaultSet faults = FaultSet::random(ft.num_nodes(), k, rng);
    const Machine machine = Machine::reconfigured(ft, faults, target.num_nodes());
    // Theorems 1/2: any <= k faults reconfigure with dilation 1, so the live
    // logical graph is the intact target and the implicit backend applies.
    const Graph live = machine.live_logical_graph(target);
    ASSERT_TRUE(live.same_structure(target)) << "trial " << trial;
    const auto router = machine_logical_router(machine, target, auto_implicit());
    ASSERT_EQ(router->backend(), RouterBackend::Implicit) << "trial " << trial;
    const TableRouter table(live);
    expect_equivalent(live, {&table, router.get()},
                      "reconfigured B(m=" + std::to_string(m) + ",h=" + std::to_string(h) +
                          ") trial " + std::to_string(trial));
  }
}

TEST_P(DeBruijnRouterGrid, DegradedMachineFallsBackAndStaysEquivalent) {
  const auto [m, h] = GetParam();
  const Graph target = debruijn_graph({.base = m, .digits = h});
  std::mt19937_64 rng(77 * m + h);
  const FaultSet faults = FaultSet::random(target.num_nodes(), 2, rng);
  const Machine machine = Machine::direct_with_faults(target, faults);
  const Graph live = machine.live_logical_graph(target);

  const auto router = machine_logical_router(machine, target, auto_implicit());
  ASSERT_NE(router->backend(), RouterBackend::Implicit)
      << "dead nodes break the algebraic shape; auto must fall back";
  EXPECT_EQ(router->backend(), RouterBackend::Compressed)
      << "constant-degree fallback is the compressed table";
  // The degraded machine is still a subgraph of its shape, so the compressed
  // backend shares the algebra and stores only the fault detours.
  const auto* compressed = dynamic_cast<const CompressedRouter*>(router.get());
  ASSERT_NE(compressed, nullptr);
  EXPECT_TRUE(compressed->uses_reference_shape());
  EXPECT_GT(compressed->num_exceptions(), 0u);  // dead rows at minimum
  if (live.num_nodes() >= 64) {
    // Sparse at scale: the detours around 2 faults are a sliver of N^2.
    EXPECT_LT(compressed->num_exceptions(), live.num_nodes() * live.num_nodes() / 4);
  }
  const TableRouter table(live);
  expect_equivalent(live, {&table, router.get()},
                    "degraded B(m=" + std::to_string(m) + ",h=" + std::to_string(h) + ")");
}

INSTANTIATE_TEST_SUITE_P(Grid, DeBruijnRouterGrid,
                         ::testing::Values(Params{2, 2}, Params{2, 3}, Params{2, 4},
                                           Params{3, 2}, Params{3, 3}, Params{3, 4},
                                           Params{4, 2}, Params{4, 3}, Params{4, 4}),
                         [](const ::testing::TestParamInfo<Params>& info) {
                           return "m" + std::to_string(info.param.m) + "_h" +
                                  std::to_string(info.param.h);
                         });

class SeRouterGrid : public ::testing::TestWithParam<unsigned> {};

TEST_P(SeRouterGrid, HealthyBackendsMatchOracleHopForHop) {
  const unsigned h = GetParam();
  const Graph g = shuffle_exchange_graph(h);
  ASSERT_EQ(make_router(g)->backend(), RouterBackend::Table);
  const auto auto_router = make_router(g, auto_implicit());
  ASSERT_EQ(auto_router->backend(), RouterBackend::Implicit);
  const TableRouter table(g);
  const CompressedRouter compressed(g);
  expect_equivalent(g, {&table, auto_router.get(), &compressed},
                    "SE(h=" + std::to_string(h) + ")");
}

TEST_P(SeRouterGrid, ReconfiguredNaturalFtSeKeepsImplicitRouting) {
  const unsigned h = GetParam();
  const unsigned k = 2;
  const Graph target = shuffle_exchange_graph(h);
  const auto ft = ft_shuffle_exchange_natural(h, k);
  std::mt19937_64 rng(900 + h);
  const FaultSet faults = FaultSet::random(ft.ft_graph.num_nodes(), k, rng);
  const Machine machine = Machine::reconfigured(ft.ft_graph, faults, target.num_nodes());
  ASSERT_TRUE(machine.live_logical_graph(target).same_structure(target));
  const auto router = machine_logical_router(machine, target, auto_implicit());
  ASSERT_EQ(router->backend(), RouterBackend::Implicit);
  const TableRouter table(target);
  expect_equivalent(target, {&table, router.get()},
                    "reconfigured SE(h=" + std::to_string(h) + ")");
}

INSTANTIATE_TEST_SUITE_P(Grid, SeRouterGrid, ::testing::Values(2, 3, 4, 5));

TEST(MakeRouter, ForcingImplicitOnUnshapedGraphThrows) {
  const Graph g = make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_THROW(make_router(g, forced(RouterOptions::Backend::Implicit)), std::invalid_argument);
}

TEST(MakeRouter, ForcedBackendsAreHonored) {
  const Graph g = debruijn_base2(3);
  EXPECT_EQ(make_router(g, forced(RouterOptions::Backend::Table))->backend(),
            RouterBackend::Table);
  EXPECT_EQ(make_router(g, forced(RouterOptions::Backend::Compressed))->backend(),
            RouterBackend::Compressed);
  EXPECT_EQ(make_router(g, forced(RouterOptions::Backend::Implicit))->backend(),
            RouterBackend::Implicit);
}

TEST(MakeRouter, HighDegreeUnshapedGraphGetsTheTable) {
  // A star exceeds the compressed-degree bound: auto must pick the table.
  GraphBuilder builder(20);
  for (NodeId v = 1; v < 20; ++v) builder.add_edge(0, v);
  const Graph g = builder.build();
  const auto router = make_router(g);
  EXPECT_EQ(router->backend(), RouterBackend::Table);
}

TEST(MakeRouter, SizeAwarePolicyPrefersTableBelowThreshold) {
  // Below the default 2^12 threshold a shaped machine gets the table: same
  // canonical hops, O(1) lookups, slab cheap at this size.
  const Graph small = debruijn_base2(6);  // 64 nodes
  EXPECT_EQ(make_router(small)->backend(), RouterBackend::Table);
  // At the threshold and above, the O(1)-memory algebra wins.
  const Graph big = debruijn_graph({.base = 2, .digits = 12});  // exactly 2^12
  EXPECT_EQ(make_router(big)->backend(), RouterBackend::Implicit);

  // The threshold is a knob...
  RouterOptions raised;
  raised.implicit_min_nodes = std::size_t{1} << 13;
  EXPECT_EQ(make_router(big, raised)->backend(), RouterBackend::Table);
  RouterOptions off;
  off.implicit_min_nodes = 0;
  EXPECT_EQ(make_router(small, off)->backend(), RouterBackend::Implicit);

  // ...and the forced-backend escape hatch bypasses the policy in both
  // directions: implicit on a tiny shape, table on a big one.
  EXPECT_EQ(make_router(small, forced(RouterOptions::Backend::Implicit))->backend(),
            RouterBackend::Implicit);
  EXPECT_EQ(make_router(big, forced(RouterOptions::Backend::Table))->backend(),
            RouterBackend::Table);

  // The policy only reroutes *shaped* graphs; unshaped graphs keep the
  // degree-based compressed/table choice regardless of the threshold.
  const Graph ft = ft_debruijn_base2(4, 2);
  EXPECT_EQ(make_router(ft)->backend(), RouterBackend::Compressed);
  EXPECT_EQ(make_router(ft, off)->backend(), RouterBackend::Compressed);
}

TEST(MakeRouter, FtGraphIsNotMistakenForItsTarget) {
  // B^k_{m,h} has m^h + k nodes and extra offset edges: neither shape
  // detector may claim it.
  const Graph ft = ft_debruijn_base2(4, 2);
  EXPECT_FALSE(debruijn_shape_of(ft).has_value());
  EXPECT_FALSE(shuffle_exchange_shape_of(ft).has_value());
  const auto router = make_router(ft);
  EXPECT_NE(router->backend(), RouterBackend::Implicit);
}

TEST(ImplicitRouter, SpotCheckAgainstBfsAtLargerN) {
  // B(2,12): 4096 nodes — too big for the all-pairs grid, sampled here.
  const DeBruijnParams params{.base = 2, .digits = 12};
  const Graph g = debruijn_graph(params);
  const ImplicitRouter router = ImplicitRouter::for_debruijn(params);
  std::mt19937_64 rng(12);
  for (int i = 0; i < 40; ++i) {
    const NodeId src = static_cast<NodeId>(rng() % g.num_nodes());
    const auto oracle = bfs_distances(g, src);
    for (int j = 0; j < 50; ++j) {
      const NodeId dst = static_cast<NodeId>(rng() % g.num_nodes());
      ASSERT_EQ(router.distance(dst, src), oracle[dst]) << +src << "->" << +dst;
    }
  }
  EXPECT_EQ(router.memory_bytes(), 0u);
}

TEST(CompressedRouter, HandlesDisconnectedGraphs) {
  const Graph g = make_graph(5, {{0, 1}, {2, 3}});
  const CompressedRouter compressed(g);
  const TableRouter table(g);
  expect_equivalent(g, {&table, &compressed}, "disconnected");
  EXPECT_FALSE(compressed.reachable(2, 0));
  EXPECT_EQ(compressed.distance(2, 0), static_cast<std::uint32_t>(-1));
  EXPECT_TRUE(compressed.path(0, 2).empty());
}

TEST(RouterPath, SelfPathIsTrivialAcrossBackends) {
  const Graph g = debruijn_base2(3);
  const TableRouter table(g);
  const CompressedRouter compressed(g);
  const auto implicit = make_router(g);
  for (const Router* r : std::vector<const Router*>{&table, &compressed, implicit.get()}) {
    const auto path = r->path(5, 5);
    ASSERT_EQ(path.size(), 1u) << router_backend_name(r->backend());
    EXPECT_EQ(path[0], 5u);
    EXPECT_EQ(r->next_hop(5, 5), 5u);
    EXPECT_EQ(r->distance(5, 5), 0u);
  }
}

TEST(RouteMany, SpanSizeMismatchThrows) {
  const Graph g = debruijn_base2(3);
  const auto router = make_router(g, auto_implicit());
  std::vector<NodeId> dests{1, 2}, nodes{3}, hops(2);
  std::vector<std::uint32_t> dists(2);
  EXPECT_THROW(router->route_many(dests, nodes, hops), std::invalid_argument);
  EXPECT_THROW(router->distance_many(dests, nodes, dists), std::invalid_argument);
}

TEST(RouteMany, MemoCacheSurvivesInterleavedRoutersAndStaysExact) {
  // Two implicit routers of *different* shapes share the thread-local memo
  // slab; interleaved batches must never cross-contaminate (never-reused
  // router ids stamp every entry). Random walk batches simulate the packet
  // engine's access pattern: the same (dest, node) pairs recur cycle after
  // cycle, one hop closer each time — the forward-seeded partial entries'
  // home turf.
  const DeBruijnParams db{.base = 2, .digits = 8};
  const Graph gb = debruijn_graph(db);
  const Graph gs = shuffle_exchange_graph(8);
  const auto rb = make_router(gb, auto_implicit());
  const auto rs = make_router(gs, auto_implicit());
  ASSERT_EQ(rb->backend(), RouterBackend::Implicit);
  ASSERT_EQ(rs->backend(), RouterBackend::Implicit);
  EXPECT_EQ(rb->memory_bytes(), 0u);
  EXPECT_GT(ImplicitRouter::route_cache_bytes(), 0u);

  std::mt19937_64 rng(2024);
  const std::size_t walks = 300;
  for (const Router* r : {rb.get(), rs.get()}) {
    const auto n = static_cast<NodeId>(r->num_nodes());
    std::vector<NodeId> dests(walks), cur(walks), hops(walks);
    for (std::size_t i = 0; i < walks; ++i) {
      dests[i] = static_cast<NodeId>(rng() % n);
      cur[i] = static_cast<NodeId>(rng() % n);
    }
    for (int cycle = 0; cycle < 24; ++cycle) {
      // Alternate routers mid-walk to stress id-stamped slot eviction.
      const Router* other = r == rb.get() ? rs.get() : rb.get();
      std::vector<NodeId> od{1, 2, 3}, on{4, 5, 6}, oh(3);
      other->route_many(od, on, oh);
      r->route_many(dests, cur, hops);
      for (std::size_t i = 0; i < walks; ++i) {
        ASSERT_EQ(hops[i], r->next_hop(dests[i], cur[i]))
            << router_backend_name(r->backend()) << " cycle=" << cycle << " walk=" << i;
        cur[i] = hops[i] == kInvalidNode ? dests[i] : hops[i];
      }
    }
  }
}

TEST(RouteMany, HintedOverloadMatchesScalarAcrossWalks) {
  // The caller-carried RouteHint overload must produce exactly the canonical
  // hops whether a hint chains across the walk, is stale (left over from a
  // different destination), or is blank — hints are an accelerator, never an
  // oracle the result depends on.
  const Graph gb = debruijn_graph({.base = 2, .digits = 10});
  const Graph gs = shuffle_exchange_graph(10);
  for (const Graph* g : {&gb, &gs}) {
    const auto router = make_router(*g, auto_implicit());
    ASSERT_EQ(router->backend(), RouterBackend::Implicit);
    std::mt19937_64 rng(99);
    const auto n = static_cast<NodeId>(router->num_nodes());
    const std::size_t walks = 256;
    std::vector<NodeId> dests(walks), cur(walks), hops(walks);
    std::vector<RouteHint> hints(walks);  // value-initialized: blank first cycle
    for (std::size_t i = 0; i < walks; ++i) {
      dests[i] = static_cast<NodeId>(rng() % n);
      cur[i] = static_cast<NodeId>(rng() % n);
    }
    for (int cycle = 0; cycle < 20; ++cycle) {
      router->route_many(dests, cur, hops, hints);
      for (std::size_t i = 0; i < walks; ++i) {
        ASSERT_EQ(hops[i], router->next_hop(dests[i], cur[i])) << "cycle=" << cycle;
        cur[i] = hops[i] == kInvalidNode ? dests[i] : hops[i];
        if (cur[i] == dests[i]) {
          // Re-aim the finished walk but deliberately keep the old hint —
          // it is now stale and must be ignored, not trusted.
          dests[i] = static_cast<NodeId>(rng() % n);
        }
      }
    }
  }
}

TEST(RouteMany, ImplicitPathMatchesScalarWalkAtScale) {
  // The witness-chained path() override against the generic scalar walk,
  // where a full table is impossible (N = 2^14).
  const Graph g = debruijn_base2(14);
  const auto router = make_router(g);
  ASSERT_EQ(router->backend(), RouterBackend::Implicit);
  std::mt19937_64 rng(7);
  const auto n = static_cast<NodeId>(router->num_nodes());
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<NodeId>(rng() % n);
    const auto dst = static_cast<NodeId>(rng() % n);
    const std::vector<NodeId> fast = router->path(src, dst);
    std::vector<NodeId> slow{src};
    for (NodeId cur = src; cur != dst;) {
      cur = router->next_hop(dst, cur);
      slow.push_back(cur);
    }
    ASSERT_EQ(fast, slow) << src << "->" << dst;
  }
}

/// Target shape with every edge incident to a fault removed — the degraded
/// machine model (dead nodes keep their ids, traffic routes around them).
Graph degraded_graph(const Graph& target, const std::vector<NodeId>& faults) {
  std::vector<bool> dead(target.num_nodes(), false);
  for (const NodeId f : faults) dead[f] = true;
  GraphBuilder b(target.num_nodes());
  for (NodeId u = 0; u < target.num_nodes(); ++u) {
    if (dead[u]) continue;
    for (const NodeId w : target.neighbors(u)) {
      if (u < w && !dead[w]) b.add_edge(u, w);
    }
  }
  return b.build();
}

/// Drives a random fault/repair chain through one incrementally-maintained
/// CompressedRouter and, after EVERY event, checks it is indistinguishable
/// from a from-scratch build over the same degraded graph: identical
/// canonical state (exception count + state hash) and hop-for-hop identical
/// answers against the BFS oracle.
void run_incremental_chain(const Graph& target, unsigned max_faults, int events,
                           std::uint64_t seed, const std::string& context) {
  CompressedRouter inc(target);
  ASSERT_TRUE(inc.uses_reference_shape()) << context;
  ASSERT_EQ(inc.num_exceptions(), 0u) << context;
  std::mt19937_64 rng(seed);
  std::vector<NodeId> faults;
  const auto n = static_cast<NodeId>(target.num_nodes());
  for (int e = 0; e < events; ++e) {
    const bool repair = !faults.empty() && (faults.size() >= max_faults || rng() % 3 == 0);
    if (repair) {
      const std::size_t idx = rng() % faults.size();
      const NodeId v = faults[idx];
      faults.erase(faults.begin() + static_cast<std::ptrdiff_t>(idx));
      inc.retract_fault(v);
    } else {
      NodeId v = static_cast<NodeId>(rng() % n);
      while (std::find(faults.begin(), faults.end(), v) != faults.end()) {
        v = static_cast<NodeId>(rng() % n);
      }
      faults.push_back(v);
      inc.apply_fault(v);
    }
    std::vector<NodeId> sorted_faults = faults;
    std::sort(sorted_faults.begin(), sorted_faults.end());
    ASSERT_EQ(inc.tracked_faults(), sorted_faults) << context << " event " << e;
    const Graph g = degraded_graph(target, faults);
    const CompressedRouter scratch(g);
    ASSERT_EQ(inc.num_exceptions(), scratch.num_exceptions()) << context << " event " << e;
    ASSERT_EQ(inc.stats().state_hash, scratch.stats().state_hash) << context << " event " << e;
    expect_equivalent(g, {&inc, &scratch}, context + " event " + std::to_string(e));
  }
}

TEST(CompressedIncremental, DeBruijnChainsMatchScratchBuilds) {
  run_incremental_chain(debruijn_base2(4), 3, 30, 11, "B(2,4)");
  run_incremental_chain(debruijn_base2(5), 4, 30, 12, "B(2,5)");
  run_incremental_chain(debruijn_graph({.base = 3, .digits = 3}), 3, 25, 13, "B(3,3)");
}

TEST(CompressedIncremental, ShuffleExchangeChainsMatchScratchBuilds) {
  run_incremental_chain(shuffle_exchange_graph(4), 3, 25, 21, "SE_4");
  run_incremental_chain(shuffle_exchange_graph(5), 4, 30, 22, "SE_5");
}

TEST(CompressedIncremental, ExceptionGrowthStaysNearFTimesH) {
  // The shape-delta representation's selling point: f faults cost about f*h
  // exception entries per node, not a dense N^2 rebuild. Assert the bound the
  // serving layer and benches rely on (generous constant, exact canonical
  // form checked by the chain tests above).
  const unsigned h = 8;
  const Graph target = debruijn_base2(h);
  const double n = static_cast<double>(target.num_nodes());
  CompressedRouter inc(target);
  std::size_t previous = 0;
  for (unsigned f = 1; f <= 4; ++f) {
    inc.apply_fault(static_cast<NodeId>(f * 37 % target.num_nodes()));
    const auto s = inc.stats();
    EXPECT_EQ(s.tracked_faults, f);
    EXPECT_GT(s.exception_entries, previous);
    EXPECT_LE(static_cast<double>(s.exception_entries), 8.0 * f * h * n)
        << "f=" << f << " exceptions=" << s.exception_entries;
    previous = s.exception_entries;
  }
  EXPECT_STREQ(inc.stats().reference, "debruijn");
  EXPECT_EQ(inc.stats().reference_digits, h);
}

TEST(CompressedIncremental, RunLengthModeRefusesIncrementalOps) {
  // A graph with no containing reference shape falls back to run-length
  // encoding, which has nothing to patch incrementally.
  const Graph ring = make_graph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}});
  CompressedRouter r(ring);
  ASSERT_FALSE(r.uses_reference_shape());
  EXPECT_STREQ(r.stats().reference, "none");
  EXPECT_GT(r.stats().run_entries, 0u);
  EXPECT_THROW(r.apply_fault(0), std::logic_error);
  EXPECT_THROW(r.retract_fault(0), std::logic_error);
}

TEST(CompressedIncremental, ArgumentValidation) {
  CompressedRouter r(debruijn_base2(4));
  EXPECT_THROW(r.apply_fault(16), std::invalid_argument);
  EXPECT_THROW(r.retract_fault(3), std::invalid_argument);  // not retired
  r.apply_fault(3);
  EXPECT_THROW(r.apply_fault(3), std::invalid_argument);  // already retired
  r.retract_fault(3);
  EXPECT_EQ(r.stats().state_hash, CompressedRouter(debruijn_base2(4)).stats().state_hash);
}

/// Parallel construction must be invisible: destination-sharded builds are
/// documented to produce storage *bit-identical* to a serial build, which the
/// campaign relies on for byte-identical reports regardless of worker count.
TEST(ParallelBuild, TableRouterIsBitIdenticalAcrossThreadCounts) {
  // A degraded graph: unreachable rows and detours exercise the sentinel
  // paths in every shard, not just the happy BFS.
  const Graph g = degraded_graph(debruijn_base2(5), {7, 19});
  const TableRouter serial(g, 1);
  for (const unsigned threads : {3u, 5u, 0u}) {
    const TableRouter sharded(g, threads);
    for (NodeId dest = 0; dest < g.num_nodes(); ++dest) {
      for (NodeId node = 0; node < g.num_nodes(); ++node) {
        ASSERT_EQ(sharded.next_hop(dest, node), serial.next_hop(dest, node))
            << "threads=" << threads << " dest=" << +dest << " node=" << +node;
        ASSERT_EQ(sharded.distance(dest, node), serial.distance(dest, node))
            << "threads=" << threads << " dest=" << +dest << " node=" << +node;
      }
    }
  }
}

TEST(ParallelBuild, ShapeDeltaCompressedBuildsAreBitIdentical) {
  // Shape-delta path: degraded B_{2,5} and SE_4 carry real exception tables,
  // so chunk concatenation order is observable through the state hash.
  for (const Graph& g : {degraded_graph(debruijn_base2(5), {7, 19}),
                         degraded_graph(shuffle_exchange_graph(4), {3, 10})}) {
    const CompressedRouter serial(g, 1);
    ASSERT_TRUE(serial.uses_reference_shape());
    ASSERT_GT(serial.num_exceptions(), 0u);
    for (const unsigned threads : {2u, 3u, 0u}) {
      const CompressedRouter sharded(g, threads);
      ASSERT_EQ(sharded.num_exceptions(), serial.num_exceptions()) << "threads=" << threads;
      ASSERT_EQ(sharded.stats().state_hash, serial.stats().state_hash) << "threads=" << threads;
      ASSERT_EQ(sharded.memory_bytes(), serial.memory_bytes()) << "threads=" << threads;
    }
  }
}

TEST(ParallelBuild, RunLengthCompressedStitchesChunkBoundaries) {
  // Run-length fallback: a long even cycle has runs that span any chunk
  // boundary, so the boundary-stitching (dropping runs that merely continue
  // the previous chunk's final hop) is what this pins down.
  std::vector<Edge> edges;
  const NodeId n = 24;
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, static_cast<NodeId>((v + 1) % n)});
  const Graph ring = make_graph(n, edges);
  const CompressedRouter serial(ring, 1);
  ASSERT_FALSE(serial.uses_reference_shape());
  for (const unsigned threads : {2u, 3u, 7u, 0u}) {
    const CompressedRouter sharded(ring, threads);
    ASSERT_EQ(sharded.num_runs(), serial.num_runs()) << "threads=" << threads;
    ASSERT_EQ(sharded.stats().state_hash, serial.stats().state_hash) << "threads=" << threads;
    expect_equivalent(ring, {&sharded}, "run-length threads=" + std::to_string(threads));
  }
}

TEST(ParallelBuild, MakeRouterPassesBuildThreadsThrough) {
  const Graph g = degraded_graph(debruijn_base2(5), {7});
  RouterOptions opts = forced(RouterOptions::Backend::Compressed);
  opts.build_threads = 3;
  const auto sharded = make_router(g, opts);
  const auto* compressed = dynamic_cast<const CompressedRouter*>(sharded.get());
  ASSERT_NE(compressed, nullptr);
  EXPECT_EQ(compressed->stats().state_hash, CompressedRouter(g, 1).stats().state_hash);

  opts.backend = RouterOptions::Backend::Table;
  const auto table = make_router(g, opts);
  EXPECT_EQ(table->backend(), RouterBackend::Table);
  expect_equivalent(g, {table.get(), compressed}, "make_router build_threads=3");
}

TEST(CompressedIncremental, ScratchBuildFromDegradedGraphAdoptsIsolatedNodes) {
  // Building from an already-degraded graph adopts isolated nodes as retired,
  // so the repair lifecycle works without the healthy-build provenance.
  const Graph target = debruijn_base2(4);
  CompressedRouter scratch(degraded_graph(target, {5}));
  ASSERT_EQ(scratch.tracked_faults(), (std::vector<NodeId>{5}));
  scratch.retract_fault(5);
  EXPECT_EQ(scratch.stats().state_hash, CompressedRouter(target).stats().state_hash);
  expect_equivalent(target, {&scratch}, "repaired from degraded build");
}

}  // namespace
}  // namespace ftdb::sim
