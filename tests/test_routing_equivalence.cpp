// Property test: the two routing mechanisms the simulator offers — de Bruijn
// shift-register routing (table-free, runs in logical space) and BFS next-hop
// table routing (general, shortest-path) — must both produce valid routes on
// every B_{m,h}, for all (m, h) in {2,3,4} x {2,3,4}.
//
// Checked per (src, dst) pair:
//   * the shift route is a walk of the graph from src to dst,
//   * its length never exceeds 2h (it is in fact <= h, the paper's bound,
//     which we also assert),
//   * the BFS table route is a walk whose length equals the BFS distance,
//   * BFS never beats the shift route's h-hop guarantee by being unreachable
//     (B_{m,h} is connected), and is never longer than the shift route.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/routing.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

struct Params {
  std::uint64_t m;
  unsigned h;
};

class RoutingEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(RoutingEquivalence, ShiftAndTableRoutesAgreeOnValidity) {
  const auto [m, h] = GetParam();
  const Graph g = debruijn_graph({.base = m, .digits = h});
  const std::size_t n = g.num_nodes();
  ASSERT_EQ(n, debruijn_num_nodes({.base = m, .digits = h}));

  const sim::RoutingTable table(g);

  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      // Shift-register route: valid walk, bounded length.
      const std::vector<NodeId> shift = sim::debruijn_shift_route(m, h, src, dst);
      ASSERT_FALSE(shift.empty()) << "m=" << m << " h=" << h << " " << src << "->" << dst;
      EXPECT_TRUE(sim::route_is_walk(g, shift, src, dst))
          << "shift route invalid: m=" << m << " h=" << h << " " << src << "->" << dst;
      const std::size_t shift_hops = shift.size() - 1;
      EXPECT_LE(shift_hops, 2u * h)
          << "m=" << m << " h=" << h << " " << src << "->" << dst;
      EXPECT_LE(shift_hops, h) << "paper bound: m=" << m << " h=" << h << " " << src
                               << "->" << dst;

      // BFS table route: valid walk, length == BFS distance.
      ASSERT_TRUE(table.reachable(dst, src))
          << "B_{m,h} must be connected: m=" << m << " h=" << h;
      const std::vector<NodeId> bfs = table.path(src, dst);
      ASSERT_FALSE(bfs.empty());
      EXPECT_TRUE(sim::route_is_walk(g, bfs, src, dst))
          << "table route invalid: m=" << m << " h=" << h << " " << src << "->" << dst;
      EXPECT_EQ(bfs.size() - 1, table.distance(dst, src));

      // BFS is shortest, so it can never be longer than the shift route.
      EXPECT_LE(bfs.size(), shift.size())
          << "m=" << m << " h=" << h << " " << src << "->" << dst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallBases, RoutingEquivalence,
                         ::testing::Values(Params{2, 2}, Params{2, 3}, Params{2, 4},
                                           Params{3, 2}, Params{3, 3}, Params{3, 4},
                                           Params{4, 2}, Params{4, 3}, Params{4, 4}),
                         [](const ::testing::TestParamInfo<Params>& info) {
                           return "m" + std::to_string(info.param.m) + "_h" +
                                  std::to_string(info.param.h);
                         });

}  // namespace
}  // namespace ftdb
