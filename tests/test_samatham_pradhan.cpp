// Tests for the Samatham–Pradhan baseline: the published size/degree figures
// used in the paper's Section I comparison, and the verifiable digit-copies
// construction.
#include <gtest/gtest.h>

#include "ft/samatham_pradhan.hpp"
#include "ft/tolerance.hpp"
#include "graph/embedding.hpp"
#include "topology/debruijn.hpp"
#include "topology/labels.hpp"

namespace ftdb {
namespace {

TEST(SpFormulas, Base2Figures) {
  // N^{log2(2k+1)} = (2k+1)^h and degree 4k+2.
  EXPECT_EQ(sp_num_nodes(2, 4, 1), 81u);     // 3^4
  EXPECT_EQ(sp_num_nodes(2, 4, 2), 625u);    // 5^4
  EXPECT_EQ(sp_degree(2, 1), 6u);
  EXPECT_EQ(sp_degree(2, 3), 14u);
}

TEST(SpFormulas, BaseMFigures) {
  EXPECT_EQ(sp_num_nodes(3, 3, 1), 64u);     // (3*1+1)^3
  EXPECT_EQ(sp_degree(3, 2), 14u);           // 2*3*2+2
}

TEST(SpFormulas, OursUsesFarFewerNodes) {
  // The paper's headline comparison: N+k vs N^{log2(2k+1)}.
  for (unsigned h = 3; h <= 8; ++h) {
    const std::uint64_t n = labels::ipow_checked(2, h);
    for (unsigned k = 1; k <= 4; ++k) {
      EXPECT_LT(n + k, sp_num_nodes(2, h, k)) << "h=" << h << " k=" << k;
    }
  }
}

TEST(SpFormulas, OursDegreeOnlySlightlyLarger) {
  // 4k+4 vs 4k+2: exactly 2 more.
  for (unsigned k = 1; k <= 6; ++k) {
    EXPECT_EQ((4u * k + 4) - sp_degree(2, k), 2u);
  }
}

TEST(DigitCopies, NodeCountAndDegree) {
  EXPECT_EQ(digit_copies_num_nodes(2, 3, 1), 64u);  // (2*2)^3
  const Graph g = digit_copies_graph(2, 3, 1);
  EXPECT_EQ(g.num_nodes(), 64u);
  EXPECT_LE(g.max_degree(), digit_copies_degree_bound(2, 1));
}

TEST(DigitCopies, EmbeddingsAreValidAndDisjoint) {
  const std::uint64_t m = 2;
  const unsigned h = 3;
  const unsigned k = 2;
  const Graph target = debruijn_graph({.base = m, .digits = h});
  const Graph big = digit_copies_graph(m, h, k);
  std::vector<bool> used(big.num_nodes(), false);
  for (unsigned c = 0; c <= k; ++c) {
    const Embedding phi = digit_copies_embedding(m, h, k, c);
    EXPECT_TRUE(is_valid_embedding(target, big, phi)) << "copy " << c;
    for (NodeId image : phi) {
      EXPECT_FALSE(used[image]) << "copies overlap at " << image;
      used[image] = true;
    }
  }
}

TEST(DigitCopies, BadCopyIndexThrows) {
  EXPECT_THROW(digit_copies_embedding(2, 3, 1, 2), std::out_of_range);
}

TEST(DigitCopies, ReconfigureAvoidsFaults) {
  const std::uint64_t m = 2;
  const unsigned h = 3;
  const unsigned k = 1;
  const Graph target = debruijn_graph({.base = m, .digits = h});
  const Graph big = digit_copies_graph(m, h, k);
  // Fault a node inside copy 0 (all digits in [0, m)): node 0.
  FaultSet faults(big.num_nodes(), {0});
  const auto phi = digit_copies_reconfigure(m, h, k, faults);
  ASSERT_TRUE(phi.has_value());
  EXPECT_TRUE(is_valid_embedding(target, big, *phi));
  for (NodeId image : *phi) EXPECT_FALSE(faults.is_faulty(image));
}

TEST(DigitCopies, ToleratesAnyKFaults_Exhaustive) {
  // Every fault set of size k leaves some copy intact (pigeonhole over
  // disjoint copies) — verified exhaustively on a small instance.
  const std::uint64_t m = 2;
  const unsigned h = 2;
  const unsigned k = 1;
  const Graph target = debruijn_graph({.base = m, .digits = h});
  const Graph big = digit_copies_graph(m, h, k);
  bool all_ok = true;
  for_each_fault_set(big.num_nodes(), k, [&](const std::vector<NodeId>& subset) {
    const FaultSet faults(big.num_nodes(), subset);
    const auto phi = digit_copies_reconfigure(m, h, k, faults);
    if (!phi.has_value() || !is_valid_embedding(target, big, *phi)) {
      all_ok = false;
      return false;
    }
    for (NodeId image : *phi) {
      if (faults.is_faulty(image)) {
        all_ok = false;
        return false;
      }
    }
    return true;
  });
  EXPECT_TRUE(all_ok);
}

TEST(DigitCopies, MonteCarloLarger) {
  const std::uint64_t m = 2;
  const unsigned h = 3;
  const unsigned k = 2;
  const Graph target = debruijn_graph({.base = m, .digits = h});
  const Graph big = digit_copies_graph(m, h, k);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const FaultSet faults = FaultSet::random(big.num_nodes(), k, rng);
    const auto phi = digit_copies_reconfigure(m, h, k, faults);
    ASSERT_TRUE(phi.has_value());
    EXPECT_TRUE(is_valid_embedding(target, big, *phi));
    for (NodeId image : *phi) EXPECT_FALSE(faults.is_faulty(image));
  }
}

TEST(DigitCopies, CostExplodesVersusOurs) {
  // The structural point of the comparison: redundancy-by-enlargement costs
  // multiplicatively, spares cost additively.
  const std::uint64_t n = labels::ipow_checked(2, 6);  // N = 64
  for (unsigned k = 1; k <= 3; ++k) {
    EXPECT_GT(digit_copies_num_nodes(2, 6, k), 8 * (n + k)) << "k=" << k;
  }
}

}  // namespace
}  // namespace ftdb
