// Tests for the collective schedule generators (Bruck / pairwise all-to-all,
// recursive-doubling / Bruck allgather, Rabenseifner / ring+Bruck allreduce):
// functional correctness against the serial oracle on every B_{m,h} and SE_h
// node count, round-count guarantees, and operational execution on healthy,
// reconfigured, and degraded machines.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ft/ft_debruijn.hpp"
#include "sim/schedule.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::sim {
namespace {

std::size_t ceil_log2(std::uint32_t n) {
  std::size_t k = 0;
  while ((std::uint32_t{1} << k) < n) ++k;
  return k;
}

const std::vector<ScheduleKind> kAllKinds = {
    ScheduleKind::AllToAllBruck,
    ScheduleKind::AllToAllPairwise,
    ScheduleKind::AllgatherRecursiveDoubling,
    ScheduleKind::AllgatherBruck,
    ScheduleKind::AllreduceRecursiveHalvingDoubling,
    ScheduleKind::AllreduceReduceScatterAllgather,
};

// Node counts of every machine the suite targets: B_{m,h} for m in {2,3,4},
// h in {2..5} (SE_h shares the base-2 counts), plus tiny/degenerate ranks.
const std::vector<std::uint32_t> kRankCounts = {1,  2,  3,   4,   5,   8,   9,  16,
                                                27, 32, 64, 81, 243, 256, 1024};

TEST(ScheduleFunctional, EveryKindMatchesSerialOracle) {
  for (const ScheduleKind kind : kAllKinds) {
    for (const std::uint32_t n : kRankCounts) {
      SCOPED_TRACE(std::string(schedule_kind_name(kind)) + " n=" + std::to_string(n));
      EXPECT_NO_THROW(verify_schedule_functional(build_schedule(kind, n)));
    }
  }
}

TEST(ScheduleFunctional, NamesRoundTrip) {
  for (const ScheduleKind kind : kAllKinds) {
    EXPECT_EQ(schedule_kind_from_name(schedule_kind_name(kind)), kind);
  }
  EXPECT_THROW(schedule_kind_from_name("alltoall"), std::invalid_argument);
}

TEST(ScheduleFunctional, ZeroRanksThrows) {
  for (const ScheduleKind kind : kAllKinds) {
    EXPECT_THROW(build_schedule(kind, 0), std::invalid_argument);
  }
}

TEST(ScheduleFunctional, MalformedScheduleFailsLoudly) {
  // A sender scheduled to send a key it does not hold must throw, not
  // silently drop the item.
  Schedule bad;
  bad.kind = ScheduleKind::AllgatherBruck;
  bad.num_ranks = 2;
  bad.steps.resize(1);
  bad.steps[0].transfers.push_back({0, 1, TransferOp::Copy, {99}});
  std::vector<RankState> states(2);
  states[0][0] = 1;
  states[1][1] = 2;
  EXPECT_THROW(run_schedule_functional(bad, std::move(states)), std::logic_error);
}

TEST(ScheduleRounds, BruckAllToAllIsCeilLog2) {
  for (const std::uint32_t n : kRankCounts) {
    const Schedule s = build_schedule(ScheduleKind::AllToAllBruck, n);
    EXPECT_EQ(s.rounds(), ceil_log2(n)) << "n=" << n;
  }
}

TEST(ScheduleRounds, RecursiveDoublingAllgatherIsLog2OnPowersOfTwo) {
  for (const std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u, 256u, 1024u}) {
    const Schedule s = build_schedule(ScheduleKind::AllgatherRecursiveDoubling, n);
    EXPECT_EQ(s.rounds(), ceil_log2(n)) << "n=" << n;
  }
}

TEST(ScheduleRounds, PairwiseAllToAllIsNMinusOne) {
  for (const std::uint32_t n : {2u, 5u, 8u, 9u}) {
    EXPECT_EQ(build_schedule(ScheduleKind::AllToAllPairwise, n).rounds(), n - 1u);
  }
}

TEST(ScheduleExecute, EveryKindCompletesOnHealthyMachines) {
  // Every schedule drains on a healthy B_{2,3} and SE_3 with zero loss.
  for (const Graph& target : {debruijn_base2(3), shuffle_exchange_graph(3)}) {
    const Machine m = Machine::direct(target);
    std::vector<NodeId> ranks(target.num_nodes());
    for (NodeId v = 0; v < target.num_nodes(); ++v) ranks[v] = v;
    for (const ScheduleKind kind : kAllKinds) {
      SCOPED_TRACE(schedule_kind_name(kind));
      const Schedule s =
          build_schedule(kind, static_cast<std::uint32_t>(target.num_nodes()));
      const ScheduleRunResult r = execute_schedule(m, target, s, ranks);
      EXPECT_TRUE(r.completed());
      EXPECT_EQ(r.rounds, s.rounds());
      EXPECT_EQ(r.logical_sends, s.total_sends());
      EXPECT_EQ(r.delivered, r.logical_sends);
      EXPECT_GT(r.total_cycles, 0u);
      EXPECT_GE(r.total_hop_cycles, r.delivered);  // every send travels >= 1 hop
    }
  }
}

TEST(ScheduleExecute, BruckAllToAllRoundsOnHealthyBaseTwo) {
  // The acceptance criterion: on a healthy B_{2,h} the Bruck all-to-all
  // executes in exactly ceil(log2 n) = h rounds.
  for (unsigned h : {2u, 3u, 4u, 5u}) {
    const Graph target = debruijn_base2(h);
    const CollectiveRunResult r =
        execute_collective(Machine::direct(target), target, ScheduleKind::AllToAllBruck);
    EXPECT_EQ(r.participants.size(), target.num_nodes());
    EXPECT_EQ(r.run.rounds, static_cast<std::size_t>(h)) << "h=" << h;
    EXPECT_TRUE(r.run.completed());
  }
}

TEST(ScheduleExecute, ReconfiguredMachineMatchesHealthyExactly) {
  // Dilation-1 reconfiguration presents the identical logical graph, so the
  // deterministic engine produces byte-identical metrics: slowdown is 1.0.
  const unsigned h = 4;
  const Graph target = debruijn_base2(h);
  const Graph ft = ft_debruijn_base2(h, 2);
  const FaultSet faults(ft.num_nodes(), {3, 11});
  const Machine healthy = Machine::direct(target);
  const Machine reconf = Machine::reconfigured(ft, faults, target.num_nodes());
  std::vector<NodeId> ranks(target.num_nodes());
  for (NodeId v = 0; v < target.num_nodes(); ++v) ranks[v] = v;
  for (const ScheduleKind kind :
       {ScheduleKind::AllToAllBruck, ScheduleKind::AllreduceRecursiveHalvingDoubling}) {
    SCOPED_TRACE(schedule_kind_name(kind));
    const Schedule s = build_schedule(kind, static_cast<std::uint32_t>(target.num_nodes()));
    const ScheduleRunResult base = execute_schedule(healthy, target, s, ranks);
    const ScheduleRunResult after = execute_schedule(reconf, target, s, ranks);
    EXPECT_EQ(after.total_cycles, base.total_cycles);
    EXPECT_EQ(after.total_hop_cycles, base.total_hop_cycles);
    EXPECT_EQ(after.max_link_congestion, base.max_link_congestion);
    EXPECT_TRUE(after.completed());
  }
}

TEST(ScheduleExecute, DegradedMachineReroutesOrReportsUnreachableNeverHangs) {
  // Faults on the bare target: the collective over the survivors either
  // completes (rerouted around the holes, with a measurable cost) or reports
  // the loss — and in both cases terminates, because reachability is checked
  // at injection. Every logical send is accounted for.
  const Graph target = debruijn_base2(4);
  for (const std::vector<NodeId>& dead :
       {std::vector<NodeId>{1}, std::vector<NodeId>{1, 8}, std::vector<NodeId>{1, 2, 4, 8},
        std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7}}) {
    SCOPED_TRACE(::testing::Message() << dead.size() << " faults");
    const Machine degraded =
        Machine::direct_with_faults(target, FaultSet(target.num_nodes(), dead));
    for (const ScheduleKind kind : kAllKinds) {
      const CollectiveRunResult r = execute_collective(degraded, target, kind);
      EXPECT_EQ(r.participants.size(), target.num_nodes() - dead.size());
      EXPECT_EQ(r.run.logical_sends,
                r.run.delivered + r.run.undeliverable + r.run.timed_out);
      if (r.run.completed()) {
        EXPECT_GT(r.run.total_cycles, 0u);  // measured slowdown, not a freebie
      } else {
        EXPECT_GT(r.run.undeliverable, 0u);
      }
    }
  }
}

TEST(ScheduleExecute, DegradedSlowdownIsMeasurable) {
  // When the survivors stay connected, rerouting around a fault costs hops:
  // the degraded run of the survivors' schedule is no cheaper than a healthy
  // run of the same schedule would predict per round, and strictly pays for
  // detours somewhere (total hop-cycles at least the number of sends).
  const Graph target = debruijn_base2(5);
  const Machine degraded =
      Machine::direct_with_faults(target, FaultSet(target.num_nodes(), {7}));
  const CollectiveRunResult r =
      execute_collective(degraded, target, ScheduleKind::AllgatherBruck);
  ASSERT_TRUE(r.run.completed());
  EXPECT_EQ(r.participants.size(), 31u);
  EXPECT_GT(r.run.total_cycles, r.run.rounds);  // > 1 cycle/round: real routing work
  EXPECT_GE(r.run.total_hop_cycles, r.run.delivered);
}

TEST(ScheduleExecute, PerStepBudgetTruncatesWithoutLosingPackets) {
  const Graph target = debruijn_base2(4);
  const Machine m = Machine::direct(target);
  std::vector<NodeId> ranks(target.num_nodes());
  for (NodeId v = 0; v < target.num_nodes(); ++v) ranks[v] = v;
  const Schedule s = build_schedule(ScheduleKind::AllToAllBruck, 16);
  ScheduleRunOptions options;
  options.max_cycles_per_step = 1;
  const ScheduleRunResult r = execute_schedule(m, target, s, ranks, options);
  EXPECT_FALSE(r.completed());
  EXPECT_GT(r.timed_out, 0u);
  EXPECT_EQ(r.logical_sends, r.delivered + r.undeliverable + r.timed_out);
}

TEST(ScheduleExecute, RankMapSizeMismatchThrows) {
  const Graph target = debruijn_base2(3);
  const Machine m = Machine::direct(target);
  const Schedule s = build_schedule(ScheduleKind::AllgatherBruck, 8);
  EXPECT_THROW(execute_schedule(m, target, s, std::vector<NodeId>{0, 1, 2}),
               std::invalid_argument);
}

TEST(ScheduleExecute, AllNodesDeadThrows) {
  const Graph target = debruijn_base2(2);
  const Machine dead =
      Machine::direct_with_faults(target, FaultSet(target.num_nodes(), {0, 1, 2, 3}));
  EXPECT_THROW(execute_collective(dead, target, ScheduleKind::AllToAllBruck),
               std::invalid_argument);
}

TEST(ScheduleExecute, BaseThreeMachineRunsNonPowerOfTwoSchedules) {
  // B_{3,3}: 27 ranks — every generator's non-power-of-two path, executed
  // end to end on the matching machine.
  const Graph target = debruijn_graph({.base = 3, .digits = 3});
  const Machine m = Machine::direct(target);
  for (const ScheduleKind kind : kAllKinds) {
    SCOPED_TRACE(schedule_kind_name(kind));
    const CollectiveRunResult r = execute_collective(m, target, kind);
    EXPECT_TRUE(r.run.completed());
    EXPECT_EQ(r.participants.size(), 27u);
  }
}

}  // namespace
}  // namespace ftdb::sim
