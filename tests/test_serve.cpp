// The always-on reconfiguration service: query surfaces vs the embedding
// pipeline, incremental-vs-batch state identity, journal recovery (including
// torn tails, fingerprint mismatch, and checkpoint compaction), degraded
// mode, and epoch reclamation. The long randomized property test drives 500+
// mixed events with a batch-rebuild oracle every 50th event and a simulated
// kill + replay mid-stream.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "ft/ft_debruijn.hpp"
#include "ft/online.hpp"
#include "serve/journal.hpp"
#include "serve/service.hpp"
#include "sim/router.hpp"
#include "topology/debruijn.hpp"

namespace ftdb::serve {
namespace {

class TempPath {
 public:
  explicit TempPath(const std::string& tag)
      : path_(::testing::TempDir() + "ftdb_serve_" + tag + "_" +
              std::to_string(::getpid()) + ".jrn") {
    std::remove(path_.c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

ServeConfig db_config(unsigned h, unsigned k, const std::string& journal = "") {
  ServeConfig config;
  config.family = Family::kDeBruijn;
  config.base = 2;
  config.digits = h;
  config.spares = k;
  config.journal_path = journal;
  config.fsync_journal = false;  // keep the suites fast; fsync is I/O-only
  return config;
}

/// Batch oracle for the degraded surface: a from-scratch CompressedRouter
/// over the target shape with the retired-in-[0,N) nodes' edges removed.
sim::CompressedRouter scratch_bare(const Graph& target, const std::vector<NodeId>& retired) {
  std::vector<bool> dead(target.num_nodes(), false);
  for (const NodeId r : retired) {
    if (r < target.num_nodes()) dead[r] = true;
  }
  GraphBuilder b(target.num_nodes());
  for (NodeId u = 0; u < target.num_nodes(); ++u) {
    if (dead[u]) continue;
    for (const NodeId w : target.neighbors(u)) {
      if (u < w && !dead[w]) b.add_edge(u, w);
    }
  }
  return sim::CompressedRouter(b.build());
}

/// Full agreement of the service's published state with a batch rebuild from
/// the same event history: embedding, retired set, bare-router canonical
/// state, and all-pairs bare next hops.
void expect_matches_batch_oracle(const ReconfigurationService& service,
                                 const OnlineReconfigurator& oracle,
                                 const std::string& context) {
  const auto epoch = service.snapshot();
  ASSERT_EQ(epoch->retired, oracle.retired()) << context;
  ASSERT_EQ(epoch->phi, oracle.mapping()) << context;
  EXPECT_TRUE(oracle.invariant_holds()) << context;

  const sim::CompressedRouter batch = scratch_bare(service.target(), oracle.retired());
  ASSERT_EQ(epoch->bare->num_exceptions(), batch.num_exceptions()) << context;
  ASSERT_EQ(epoch->bare->stats().state_hash, batch.stats().state_hash) << context;
  const auto n = static_cast<NodeId>(service.target().num_nodes());
  for (NodeId dest = 0; dest < n; ++dest) {
    for (NodeId node = 0; node < n; ++node) {
      ASSERT_EQ(epoch->bare->next_hop(dest, node), batch.next_hop(dest, node))
          << context << " " << +node << "->" << +dest;
    }
  }
}

TEST(Serve, FreshServiceServesHealthyRoutes) {
  ReconfigurationService service(db_config(4, 2));
  EXPECT_EQ(service.num_logical_nodes(), 16u);
  EXPECT_EQ(service.num_physical_nodes(), 18u);
  auto reader = service.reader();
  EXPECT_FALSE(reader.degraded());

  // Identity embedding: FT-surface routes equal healthy canonical routes.
  const auto healthy = sim::make_router(service.target());
  for (NodeId from = 0; from < 16; ++from) {
    for (NodeId dest = 0; dest < 16; ++dest) {
      EXPECT_EQ(reader.route(from, dest), healthy->path(from, dest));
      EXPECT_EQ(reader.bare_route(from, dest), healthy->path(from, dest));
      if (from != dest) {
        EXPECT_EQ(reader.next_hop(dest, from), healthy->next_hop(dest, from));
      }
    }
  }
  const auto s = service.stats();
  EXPECT_EQ(s.faults_outstanding, 0u);
  EXPECT_EQ(s.bare.exception_entries, 0u);
  EXPECT_EQ(s.journal_records, 0u);  // volatile service
}

TEST(Serve, BatchedNextHopsMatchScalarAcrossMutations) {
  // next_hops is the wave-forwarding shape of next_hop: one epoch pin, one
  // route_many. It must agree with the scalar surface element-for-element
  // through the whole fault/repair lifecycle (identity phi, shifted phi,
  // and back).
  ReconfigurationService service(db_config(4, 2));
  auto reader = service.reader();
  const NodeId n = static_cast<NodeId>(service.num_logical_nodes());

  const auto check_all_pairs = [&] {
    std::vector<NodeId> dests, nodes;
    for (NodeId from = 0; from < n; ++from) {
      for (NodeId dest = 0; dest < n; ++dest) {
        if (from == dest) continue;
        dests.push_back(dest);
        nodes.push_back(from);
      }
    }
    std::vector<NodeId> hops(dests.size());
    reader.next_hops(dests, nodes, hops);
    for (std::size_t i = 0; i < dests.size(); ++i) {
      ASSERT_EQ(hops[i], reader.next_hop(dests[i], nodes[i]))
          << nodes[i] << "->" << dests[i];
    }
  };

  check_all_pairs();
  ASSERT_EQ(service.fault({FaultKind::kNode, 5, 0}), MutationStatus::kAccepted);
  check_all_pairs();
  ASSERT_EQ(service.fault({FaultKind::kNode, 11, 0}), MutationStatus::kAccepted);
  check_all_pairs();
  ASSERT_EQ(service.repair(5), MutationStatus::kRepaired);
  check_all_pairs();

  // Contract checks: mismatched spans and out-of-range ids fail loudly.
  std::vector<NodeId> d{1, 2}, s{0}, h(2);
  EXPECT_THROW(reader.next_hops(d, s, h), std::invalid_argument);
  std::vector<NodeId> bad_d{n}, one_s{0}, one_h(1);
  EXPECT_THROW(reader.next_hops(bad_d, one_s, one_h), std::out_of_range);
}

TEST(Serve, FaultShiftsEmbeddingAndPatchesBareRouter) {
  ReconfigurationService service(db_config(4, 2));
  auto reader = service.reader();
  const auto epoch0 = reader.epoch_id();

  EXPECT_EQ(service.fault({FaultKind::kNode, 5, 0}), MutationStatus::kAccepted);
  EXPECT_GT(reader.epoch_id(), epoch0);
  EXPECT_EQ(service.fault({FaultKind::kNode, 5, 0}), MutationStatus::kRedundant);

  const auto epoch = service.snapshot();
  EXPECT_EQ(epoch->retired, (std::vector<NodeId>{5}));
  // FT surface: routes run in healthy logical space, translated through phi
  // — no physical path ever lands on the retired node.
  for (NodeId from = 0; from < 16; ++from) {
    for (const NodeId hop : reader.route(from, 9)) EXPECT_NE(hop, 5u);
  }
  // Bare surface: node 5 is simply gone; its row is unreachable.
  EXPECT_EQ(reader.bare_next_hop(5, 0), kInvalidNode);
  EXPECT_TRUE(reader.bare_route(0, 5).empty());
  EXPECT_GT(service.stats().bare.exception_entries, 0u);

  OnlineReconfigurator oracle(ft_debruijn_base2(4, 2), debruijn_base2(4));
  oracle.apply({FaultKind::kNode, 5, 0});
  expect_matches_batch_oracle(service, oracle, "one fault");
}

TEST(Serve, LinkAndBusAndSpareRegionFaults) {
  ReconfigurationService service(db_config(4, 3));
  EXPECT_EQ(service.fault({FaultKind::kLink, 3, 7}), MutationStatus::kAccepted);
  EXPECT_EQ(service.fault({FaultKind::kLink, 3, 6}), MutationStatus::kRedundant);
  EXPECT_EQ(service.fault({FaultKind::kBus, 9, 0}), MutationStatus::kAccepted);

  // A spare-region fault (node 16 >= N) reconfigures the embedding but the
  // degraded-shape router is untouched — same shared epoch component.
  const auto before = service.snapshot();
  EXPECT_EQ(service.fault({FaultKind::kNode, 16, 0}), MutationStatus::kAccepted);
  const auto after = service.snapshot();
  EXPECT_EQ(before->bare.get(), after->bare.get());
  EXPECT_NE(before->phi, after->phi);

  EXPECT_THROW(service.fault({FaultKind::kNode, 99, 0}), std::out_of_range);
  EXPECT_THROW(service.fault({FaultKind::kLink, 1, 99}), std::out_of_range);
  EXPECT_THROW(service.fault({FaultKind::kLink, 2, 2}), std::invalid_argument);
  EXPECT_THROW(service.repair(99), std::out_of_range);
}

TEST(Serve, DegradedModeRefusesFaultsKeepsQueriesAllowsRepair) {
  ReconfigurationService service(db_config(4, 1));
  auto reader = service.reader();
  EXPECT_EQ(service.fault({FaultKind::kNode, 2, 0}), MutationStatus::kAccepted);
  EXPECT_TRUE(reader.degraded());

  // Mutations are refused with the typed error; state does not move.
  const auto hash = service.state_hash();
  EXPECT_EQ(service.fault({FaultKind::kNode, 4, 0}), MutationStatus::kBudgetExhausted);
  EXPECT_EQ(service.state_hash(), hash);
  // Queries keep flowing on the last good epoch.
  EXPECT_FALSE(reader.route(0, 9).empty());
  EXPECT_NE(reader.bare_next_hop(9, 0), kInvalidNode);
  // A redundant fault is still recognized as redundant, not refused.
  EXPECT_EQ(service.fault({FaultKind::kNode, 2, 0}), MutationStatus::kRedundant);

  // Repair exits degraded mode.
  EXPECT_EQ(service.repair(2), MutationStatus::kRepaired);
  EXPECT_FALSE(reader.degraded());
  EXPECT_EQ(service.repair(2), MutationStatus::kNotRetired);
  EXPECT_EQ(service.fault({FaultKind::kNode, 4, 0}), MutationStatus::kAccepted);
}

TEST(Serve, EpochsAreReclaimedWithoutPinnedReaders) {
  ReconfigurationService service(db_config(4, 2));
  for (int round = 0; round < 10; ++round) {
    ASSERT_EQ(service.fault({FaultKind::kNode, 1, 0}), MutationStatus::kAccepted);
    ASSERT_EQ(service.repair(1), MutationStatus::kRepaired);
  }
  // Readers pin only for a query's duration, so old epochs must not pile up.
  EXPECT_EQ(service.stats().epochs_live, 1u);
}

TEST(Serve, SnapshotKeepsEpochAliveAcrossMutations) {
  ReconfigurationService service(db_config(4, 2));
  const auto old_epoch = service.snapshot();
  ASSERT_EQ(service.fault({FaultKind::kNode, 3, 0}), MutationStatus::kAccepted);
  // The shared_ptr snapshot outlives publication + sweeps; its content is
  // still the pre-fault state.
  EXPECT_TRUE(old_epoch->retired.empty());
  EXPECT_EQ(old_epoch->bare->num_exceptions(), 0u);
  EXPECT_EQ(service.snapshot()->retired, (std::vector<NodeId>{3}));
}

TEST(Serve, JournalReplayRestoresStateByteIdentically) {
  TempPath journal("replay");
  std::uint64_t hash = 0;
  {
    ReconfigurationService service(db_config(4, 3, journal.str()));
    EXPECT_EQ(service.fault({FaultKind::kNode, 5, 0}), MutationStatus::kAccepted);
    EXPECT_EQ(service.fault({FaultKind::kLink, 3, 7}), MutationStatus::kAccepted);
    EXPECT_EQ(service.fault({FaultKind::kNode, 5, 0}), MutationStatus::kRedundant);
    EXPECT_EQ(service.repair(3), MutationStatus::kRepaired);
    EXPECT_EQ(service.fault({FaultKind::kBus, 12, 0}), MutationStatus::kAccepted);
    EXPECT_EQ(service.stats().journal_records, 5u);
    hash = service.state_hash();
  }
  ReconfigurationService replayed(db_config(4, 3, journal.str()));
  EXPECT_EQ(replayed.replayed_events(), 5u);
  EXPECT_EQ(replayed.state_hash(), hash);

  OnlineReconfigurator oracle(ft_debruijn_base2(4, 3), debruijn_base2(4));
  oracle.apply({FaultKind::kNode, 5, 0});
  oracle.apply({FaultKind::kLink, 3, 7});
  oracle.repair(3);
  oracle.apply({FaultKind::kBus, 12, 0});
  expect_matches_batch_oracle(replayed, oracle, "after replay");
}

TEST(Serve, TornJournalTailIsTruncatedOnRecovery) {
  TempPath journal("torn");
  std::uint64_t hash = 0;
  {
    ReconfigurationService service(db_config(4, 2, journal.str()));
    service.fault({FaultKind::kNode, 5, 0});
    service.fault({FaultKind::kNode, 9, 0});
    hash = service.state_hash();
  }
  {  // a crash mid-append leaves a partial frame
    std::ofstream f(journal.str(), std::ios::binary | std::ios::app);
    f.write("\x01\x03\x00", 3);
  }
  ReconfigurationService replayed(db_config(4, 2, journal.str()));
  EXPECT_EQ(replayed.replayed_events(), 2u);
  EXPECT_EQ(replayed.state_hash(), hash);
}

TEST(Serve, JournalRefusesForeignFingerprintAndGarbage) {
  TempPath journal("fp");
  { ReconfigurationService service(db_config(4, 2, journal.str())); }
  // Same path, different machine shape: refused up front.
  EXPECT_THROW(ReconfigurationService(db_config(5, 2, journal.str())), std::runtime_error);
  EXPECT_THROW(ReconfigurationService(db_config(4, 3, journal.str())), std::runtime_error);
  {
    std::ofstream f(journal.str(), std::ios::binary | std::ios::trunc);
    f << "not a journal at all";
  }
  EXPECT_THROW(ReconfigurationService(db_config(4, 2, journal.str())), std::runtime_error);
}

TEST(Serve, CheckpointCompactsJournalPreservingState) {
  TempPath journal("ckpt");
  std::uint64_t hash = 0;
  {
    ReconfigurationService service(db_config(4, 2, journal.str()));
    for (int round = 0; round < 6; ++round) {
      service.fault({FaultKind::kNode, static_cast<NodeId>(round % 3 + 1), 0});
      service.repair(static_cast<NodeId>(round % 3 + 1));
    }
    service.fault({FaultKind::kNode, 7, 0});
    service.fault({FaultKind::kLink, 2, 4});
    const auto before = service.stats().journal_bytes;
    hash = service.state_hash();
    service.checkpoint();
    EXPECT_EQ(service.state_hash(), hash);
    EXPECT_LT(service.stats().journal_bytes, before);
    EXPECT_EQ(service.stats().journal_records, 2u);  // one per outstanding fault
  }
  ReconfigurationService replayed(db_config(4, 2, journal.str()));
  EXPECT_EQ(replayed.replayed_events(), 2u);
  EXPECT_EQ(replayed.state_hash(), hash);
}

TEST(Serve, ShuffleExchangeFamilyServes) {
  ServeConfig config;
  config.family = Family::kShuffleExchange;
  config.digits = 4;
  config.spares = 2;
  ReconfigurationService service(config);
  auto reader = service.reader();
  EXPECT_EQ(service.fault({FaultKind::kNode, 6, 0}), MutationStatus::kAccepted);
  for (const NodeId hop : reader.route(0, 13)) EXPECT_NE(hop, 6u);
  const auto bare_path = reader.bare_route(0, 13);
  EXPECT_EQ(std::count(bare_path.begin(), bare_path.end(), 6), 0);
  EXPECT_GT(service.stats().bare.exception_entries, 0u);
  EXPECT_EQ(service.repair(6), MutationStatus::kRepaired);
  EXPECT_EQ(service.stats().bare.exception_entries, 0u);
}

// The satellite property test: 500+ mixed events through a journaled
// service; every 50th event the full published state is checked against a
// batch rebuild of the whole history, and mid-stream the journal is replayed
// into a second service (the kill-and-recover scenario) and must agree.
TEST(Serve, RandomizedEventStreamMatchesBatchOracle) {
  TempPath journal("prop");
  const unsigned h = 5;
  const unsigned k = 4;
  ReconfigurationService service(db_config(h, k, journal.str()));
  OnlineReconfigurator oracle(ft_debruijn_base2(h, k), debruijn_base2(h));
  const auto physical = static_cast<NodeId>(service.num_physical_nodes());

  std::mt19937_64 rng(2026);
  int accepted = 0, refused = 0, repaired = 0;
  for (int event = 0; event < 520; ++event) {
    const unsigned roll = static_cast<unsigned>(rng() % 10);
    if (roll < 3 && oracle.faults_outstanding() > 0) {
      const auto& retired = oracle.retired();
      const NodeId node = retired[rng() % retired.size()];
      ASSERT_EQ(service.repair(node), MutationStatus::kRepaired) << "event " << event;
      ASSERT_TRUE(oracle.repair(node));
      ++repaired;
    } else {
      FaultEvent fe;
      fe.node = static_cast<NodeId>(rng() % physical);
      if (roll < 6) {
        fe.kind = FaultKind::kNode;
      } else if (roll < 8) {
        fe.kind = FaultKind::kBus;
      } else {
        fe.kind = FaultKind::kLink;
        fe.node = static_cast<NodeId>(rng() % (physical / 2));
        do {
          fe.other = static_cast<NodeId>(rng() % physical);
        } while (fe.other == fe.node);
      }
      const MutationStatus got = service.fault(fe);
      const EventStatus want = oracle.apply(fe);
      switch (want) {
        case EventStatus::kAccepted:
          ASSERT_EQ(got, MutationStatus::kAccepted) << "event " << event;
          ++accepted;
          break;
        case EventStatus::kRedundant:
          ASSERT_EQ(got, MutationStatus::kRedundant) << "event " << event;
          break;
        case EventStatus::kBudgetExhausted:
          ASSERT_EQ(got, MutationStatus::kBudgetExhausted) << "event " << event;
          ++refused;
          break;
      }
    }
    if (event % 50 == 49) {
      expect_matches_batch_oracle(service, oracle,
                                  "property event " + std::to_string(event));
    }
    if (event == 259) {
      // Kill-and-recover mid-stream: a second service replays the same
      // journal (the file is shared; the replica only reads) and must land
      // on the identical state.
      ReconfigurationService replica(db_config(h, k, journal.str()));
      ASSERT_EQ(replica.state_hash(), service.state_hash());
      expect_matches_batch_oracle(replica, oracle, "mid-stream replica");
    }
  }
  // The stream genuinely exercised all three outcomes.
  EXPECT_GT(accepted, 50);
  EXPECT_GT(refused, 0);
  EXPECT_GT(repaired, 50);

  const std::uint64_t hash = service.state_hash();
  service.checkpoint();
  ASSERT_EQ(service.state_hash(), hash);
  ReconfigurationService survivor(db_config(h, k, journal.str()));
  EXPECT_EQ(survivor.state_hash(), hash);
  expect_matches_batch_oracle(survivor, oracle, "final survivor");
}

TEST(Serve, JournalUnitRoundTrip) {
  TempPath path("unit");
  const std::uint64_t fp = 0xABCDEF0123456789ull;
  {
    Journal j(path.str(), fp, /*fsync=*/false);
    EXPECT_TRUE(j.recovered().empty());
    j.append({JournalOp::kFaultNode, 7, 0});
    j.append({JournalOp::kFaultLink, 3, 9});
    j.append({JournalOp::kRepair, 7, 0});
    EXPECT_EQ(j.num_records(), 3u);
  }
  {
    Journal j(path.str(), fp, false);
    ASSERT_EQ(j.recovered().size(), 3u);
    EXPECT_EQ(j.recovered()[1], (JournalRecord{JournalOp::kFaultLink, 3, 9}));
    EXPECT_EQ(j.truncated_bytes(), 0u);
    j.rewrite({{JournalOp::kFaultBus, 1, 0}});
  }
  {
    Journal j(path.str(), fp, false);
    ASSERT_EQ(j.recovered().size(), 1u);
    EXPECT_EQ(j.recovered()[0].op, JournalOp::kFaultBus);
    EXPECT_THROW(Journal(path.str(), fp + 1, false), std::runtime_error);
  }
}

}  // namespace
}  // namespace ftdb::serve
