// Multithreaded soak for the reconfiguration service, built to run under
// ThreadSanitizer in CI: reader threads hammer both query surfaces while the
// writer streams fault/repair events and checkpoints, exercising the epoch
// pin/publish/reclaim protocol. Between phases the service is torn down and
// replayed from its journal, and the recovered state must hash identically —
// the kill-and-recover path under concurrency.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "ft/online.hpp"
#include "serve/service.hpp"

namespace ftdb::serve {
namespace {

ServeConfig soak_config(const std::string& journal) {
  ServeConfig config;
  config.family = Family::kDeBruijn;
  config.base = 2;
  config.digits = 5;  // N = 32, physical = 35
  config.spares = 3;
  config.journal_path = journal;
  config.fsync_journal = false;
  return config;
}

/// One reader thread: random FT-surface and bare-surface queries with cheap
/// per-answer sanity checks. Each individual query is epoch-consistent, so
/// the checks hold no matter how the writer interleaves.
void reader_loop(ReconfigurationService& service, std::uint64_t seed,
                 const std::atomic<bool>& stop, std::atomic<std::uint64_t>& queries) {
  auto reader = service.reader();
  std::mt19937_64 rng(seed);
  const auto n = static_cast<NodeId>(service.num_logical_nodes());
  const auto physical = static_cast<NodeId>(service.num_physical_nodes());
  std::uint64_t local = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const NodeId from = static_cast<NodeId>(rng() % n);
    const NodeId dest = static_cast<NodeId>(rng() % n);

    // FT surface: the healthy-shape route always exists; its physical
    // endpoints are the current embedding of from/dest.
    const auto path = reader.route(from, dest);
    ASSERT_FALSE(path.empty());
    ASSERT_LT(path.front(), physical);
    ASSERT_LT(path.back(), physical);
    if (from == dest) {
      ASSERT_EQ(path.size(), 1u);
    }
    const NodeId hop = reader.next_hop(dest, from);
    ASSERT_LT(hop, physical);

    // Bare surface: either unreachable around the faults or a real path of
    // in-range logical nodes starting and ending correctly. Each call pins
    // its own epoch, so the route and the next hop are checked independently
    // (the writer may publish between the two queries).
    const auto bare = reader.bare_route(from, dest);
    if (!bare.empty()) {
      ASSERT_EQ(bare.front(), from);
      ASSERT_EQ(bare.back(), dest);
      for (const NodeId node : bare) ASSERT_LT(node, n);
    }
    const NodeId bare_hop = reader.bare_next_hop(dest, from);
    ASSERT_TRUE(bare_hop == kInvalidNode || bare_hop < n);

    (void)reader.epoch_id();
    (void)reader.degraded();
    ++local;
  }
  queries.fetch_add(local, std::memory_order_relaxed);
}

TEST(ServeSoak, ConcurrentReadersWriterAndReplay) {
  const std::string journal = ::testing::TempDir() + "ftdb_serve_soak_" +
                              std::to_string(::getpid()) + ".jrn";
  std::remove(journal.c_str());

  constexpr int kPhases = 3;
  constexpr int kReaders = 3;
  constexpr int kWriterEvents = 60;

  std::uint64_t previous_hash = 0;
  std::mt19937_64 rng(7);
  std::atomic<std::uint64_t> queries{0};

  for (int phase = 0; phase < kPhases; ++phase) {
    ReconfigurationService service(soak_config(journal));
    if (phase > 0) {
      // The journal replay must resurrect the exact pre-teardown state.
      ASSERT_EQ(service.state_hash(), previous_hash) << "phase " << phase;
      ASSERT_GT(service.replayed_events(), 0u);
    }

    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    threads.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back(reader_loop, std::ref(service),
                           static_cast<std::uint64_t>(phase * 100 + r), std::cref(stop),
                           std::ref(queries));
    }

    const auto physical = static_cast<NodeId>(service.num_physical_nodes());
    for (int event = 0; event < kWriterEvents; ++event) {
      const unsigned roll = static_cast<unsigned>(rng() % 8);
      if (roll < 3) {
        const auto snapshot = service.snapshot();
        if (!snapshot->retired.empty()) {
          service.repair(snapshot->retired[rng() % snapshot->retired.size()]);
          continue;
        }
      }
      if (roll == 7) {
        service.checkpoint();
        continue;
      }
      FaultEvent fe;
      fe.kind = roll % 2 == 0 ? FaultKind::kNode : FaultKind::kBus;
      fe.node = static_cast<NodeId>(rng() % physical);
      service.fault(fe);  // any status is fine; readers must never notice
    }

    stop.store(true);
    for (std::thread& t : threads) t.join();

    const auto stats = service.stats();
    EXPECT_LE(stats.faults_outstanding, stats.spare_budget);
    // All readers have unpinned: the lock-taking stats() path sweeps retired
    // epochs, so an epoch pinned at the moment of the last mutation must not
    // be retained past this point (idle services shed old epochs too).
    EXPECT_EQ(stats.epochs_live, 1u);
    previous_hash = service.state_hash();
  }

  EXPECT_GT(queries.load(), 0u);
  std::remove(journal.c_str());
  std::remove((journal + ".tmp").c_str());
}

}  // namespace
}  // namespace ftdb::serve
