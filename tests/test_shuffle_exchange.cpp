// Tests for the shuffle-exchange target network SE_h.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "graph/algorithms.hpp"
#include "topology/labels.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb {
namespace {

TEST(ShuffleExchange, NodeCount) {
  EXPECT_EQ(shuffle_exchange_num_nodes(3), 8u);
  EXPECT_EQ(shuffle_exchange_num_nodes(6), 64u);
  EXPECT_THROW(shuffle_exchange_num_nodes(0), std::invalid_argument);
}

TEST(ShuffleExchange, DegreeAtMostThree) {
  for (unsigned h = 2; h <= 8; ++h) {
    EXPECT_LE(shuffle_exchange_graph(h).max_degree(), 3u) << "h=" << h;
  }
}

TEST(ShuffleExchange, Connected) {
  for (unsigned h = 2; h <= 8; ++h) {
    EXPECT_TRUE(is_connected(shuffle_exchange_graph(h))) << "h=" << h;
  }
}

TEST(ShuffleExchange, CornerNodesDegreeOne) {
  // 0...0 and 1...1 have self-loop shuffles; only the exchange edge remains.
  Graph g = shuffle_exchange_graph(4);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(15), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(15, 14));
}

TEST(ShuffleExchange, EdgeSetFirstPrinciples) {
  const unsigned h = 4;
  const std::uint64_t n = 16;
  Graph g = shuffle_exchange_graph(h);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t y = x + 1; y < n; ++y) {
      const bool shuffle = labels::rotate_left(x, 2, h) == y || labels::rotate_left(y, 2, h) == x;
      const bool exchange = (x ^ y) == 1;
      EXPECT_EQ(g.has_edge(static_cast<NodeId>(x), static_cast<NodeId>(y)), shuffle || exchange)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(ShuffleExchange, NeighborFunctions) {
  const unsigned h = 3;
  EXPECT_EQ(se_shuffle(0b011, h), 0b110u);
  EXPECT_EQ(se_unshuffle(0b110, h), 0b011u);
  EXPECT_EQ(se_exchange(0b110), 0b111u);
  for (NodeId x = 0; x < 8; ++x) {
    EXPECT_EQ(se_unshuffle(se_shuffle(x, h), h), x);
    EXPECT_EQ(se_exchange(se_exchange(x)), x);
  }
}

TEST(ShuffleExchangeDistance, MatchesBfsExhaustively) {
  // The rotation-tour formula must be hop-exact against BFS for every pair,
  // h = 1 (a single exchange edge) included.
  for (unsigned h = 1; h <= 7; ++h) {
    const Graph g = shuffle_exchange_graph(h);
    for (NodeId x = 0; x < g.num_nodes(); ++x) {
      const auto dist = bfs_distances(g, x);
      for (NodeId y = 0; y < g.num_nodes(); ++y) {
        EXPECT_EQ(shuffle_exchange_distance(h, x, y), dist[y])
            << "h=" << h << " " << +x << "->" << +y;
      }
    }
  }
}

TEST(ShuffleExchangeDistance, OutOfRangeThrows) {
  EXPECT_THROW(shuffle_exchange_distance(3, 8, 0), std::out_of_range);
}

TEST(ShuffleExchangeShape, RecognizedAndRejected) {
  for (unsigned h = 2; h <= 6; ++h) {
    const auto shape = shuffle_exchange_shape_of(shuffle_exchange_graph(h));
    ASSERT_TRUE(shape.has_value()) << "h=" << h;
    EXPECT_EQ(*shape, h);
  }
  // A cycle of SE size is not SE.
  EXPECT_FALSE(shuffle_exchange_shape_of(
                   make_graph(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}}))
                   .has_value());
}

TEST(ShuffleExchange, EdgeCountFormula) {
  // 2^{h-1} exchange edges + (2^h - number of rotation fixed points) shuffle
  // "arrows"; as an undirected simple graph the count is easier to verify
  // directly against the generator's own invariants.
  for (unsigned h = 3; h <= 6; ++h) {
    Graph g = shuffle_exchange_graph(h);
    std::size_t expected = 0;
    const std::uint64_t n = labels::ipow_checked(2, h);
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (std::uint64_t x = 0; x < n; ++x) {
      const std::uint64_t s = labels::rotate_left(x, 2, h);
      if (s != x) seen.insert({std::min(x, s), std::max(x, s)});
      seen.insert({std::min(x, x ^ 1), std::max(x, x ^ 1)});
    }
    expected = seen.size();
    EXPECT_EQ(g.num_edges(), expected) << "h=" << h;
  }
}

}  // namespace
}  // namespace ftdb
