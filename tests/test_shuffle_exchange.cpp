// Tests for the shuffle-exchange target network SE_h.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <utility>

#include "graph/algorithms.hpp"
#include "topology/labels.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb {
namespace {

TEST(ShuffleExchange, NodeCount) {
  EXPECT_EQ(shuffle_exchange_num_nodes(3), 8u);
  EXPECT_EQ(shuffle_exchange_num_nodes(6), 64u);
  EXPECT_THROW(shuffle_exchange_num_nodes(0), std::invalid_argument);
}

TEST(ShuffleExchange, DegreeAtMostThree) {
  for (unsigned h = 2; h <= 8; ++h) {
    EXPECT_LE(shuffle_exchange_graph(h).max_degree(), 3u) << "h=" << h;
  }
}

TEST(ShuffleExchange, Connected) {
  for (unsigned h = 2; h <= 8; ++h) {
    EXPECT_TRUE(is_connected(shuffle_exchange_graph(h))) << "h=" << h;
  }
}

TEST(ShuffleExchange, CornerNodesDegreeOne) {
  // 0...0 and 1...1 have self-loop shuffles; only the exchange edge remains.
  Graph g = shuffle_exchange_graph(4);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(15), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(15, 14));
}

TEST(ShuffleExchange, EdgeSetFirstPrinciples) {
  const unsigned h = 4;
  const std::uint64_t n = 16;
  Graph g = shuffle_exchange_graph(h);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t y = x + 1; y < n; ++y) {
      const bool shuffle = labels::rotate_left(x, 2, h) == y || labels::rotate_left(y, 2, h) == x;
      const bool exchange = (x ^ y) == 1;
      EXPECT_EQ(g.has_edge(static_cast<NodeId>(x), static_cast<NodeId>(y)), shuffle || exchange)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(ShuffleExchange, NeighborFunctions) {
  const unsigned h = 3;
  EXPECT_EQ(se_shuffle(0b011, h), 0b110u);
  EXPECT_EQ(se_unshuffle(0b110, h), 0b011u);
  EXPECT_EQ(se_exchange(0b110), 0b111u);
  for (NodeId x = 0; x < 8; ++x) {
    EXPECT_EQ(se_unshuffle(se_shuffle(x, h), h), x);
    EXPECT_EQ(se_exchange(se_exchange(x)), x);
  }
}

TEST(ShuffleExchangeDistance, MatchesBfsExhaustively) {
  // The rotation-tour formula must be hop-exact against BFS for every pair,
  // h = 1 (a single exchange edge) included.
  for (unsigned h = 1; h <= 7; ++h) {
    const Graph g = shuffle_exchange_graph(h);
    for (NodeId x = 0; x < g.num_nodes(); ++x) {
      const auto dist = bfs_distances(g, x);
      for (NodeId y = 0; y < g.num_nodes(); ++y) {
        EXPECT_EQ(shuffle_exchange_distance(h, x, y), dist[y])
            << "h=" << h << " " << +x << "->" << +y;
      }
    }
  }
}

TEST(ShuffleExchangeDistance, OutOfRangeThrows) {
  EXPECT_THROW(shuffle_exchange_distance(3, 8, 0), std::out_of_range);
}

TEST(ShuffleExchangeShape, RecognizedAndRejected) {
  for (unsigned h = 2; h <= 6; ++h) {
    const auto shape = shuffle_exchange_shape_of(shuffle_exchange_graph(h));
    ASSERT_TRUE(shape.has_value()) << "h=" << h;
    EXPECT_EQ(*shape, h);
  }
  // A cycle of SE size is not SE.
  EXPECT_FALSE(shuffle_exchange_shape_of(
                   make_graph(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}}))
                   .has_value());
}

TEST(ShuffleExchange, EdgeCountFormula) {
  // 2^{h-1} exchange edges + (2^h - number of rotation fixed points) shuffle
  // "arrows"; as an undirected simple graph the count is easier to verify
  // directly against the generator's own invariants.
  for (unsigned h = 3; h <= 6; ++h) {
    Graph g = shuffle_exchange_graph(h);
    std::size_t expected = 0;
    const std::uint64_t n = labels::ipow_checked(2, h);
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (std::uint64_t x = 0; x < n; ++x) {
      const std::uint64_t s = labels::rotate_left(x, 2, h);
      if (s != x) seen.insert({std::min(x, s), std::max(x, s)});
      seen.insert({std::min(x, x ^ 1), std::max(x, x ^ 1)});
    }
    expected = seen.size();
    EXPECT_EQ(g.num_edges(), expected) << "h=" << h;
  }
}


// --- incremental distance kernels (PR 9) ---

TEST(ShuffleExchange, StepperResetMatchesDistanceAllPairs) {
  // Exhaustive over SE_1..SE_7: the filtered, sort-free scan must equal the
  // canonical formula (itself BFS-verified) for every pair.
  for (unsigned h = 1; h <= 7; ++h) {
    const std::uint64_t n = shuffle_exchange_num_nodes(h);
    for (std::uint64_t y = 0; y < n; ++y) {
      ShuffleExchangeDistanceStepper stepper(h, static_cast<NodeId>(y));
      for (std::uint64_t x = 0; x < n; ++x) {
        EXPECT_EQ(stepper.reset(static_cast<NodeId>(x)),
                  shuffle_exchange_distance(h, static_cast<NodeId>(x), static_cast<NodeId>(y)))
            << "h=" << h << " x=" << x << " y=" << y;
      }
    }
  }
}

TEST(ShuffleExchange, StepperRandomWalkAgreesWithFormula) {
  // 10k random-walk steps: hinted O(h) step() updates track the formula.
  for (unsigned h : {5u, 8u, 10u}) {
    const std::uint64_t n = shuffle_exchange_num_nodes(h);
    std::mt19937_64 rng(31 * h);
    const auto dest = static_cast<NodeId>(rng() % n);
    ShuffleExchangeDistanceStepper stepper(h, dest);
    NodeId cur = static_cast<NodeId>(rng() % n);
    stepper.reset(cur);
    std::vector<NodeId> nbrs;
    for (int s = 0; s < 10000; ++s) {
      shuffle_exchange_neighbors(h, cur, nbrs);
      cur = nbrs[rng() % nbrs.size()];
      const std::uint32_t got = stepper.step(cur);
      ASSERT_EQ(got, shuffle_exchange_distance(h, cur, dest))
          << "h=" << h << " step=" << s << " cur=" << cur;
    }
  }
}

TEST(ShuffleExchange, StepperProbeRespectsCapAndExactness) {
  const unsigned h = 9;
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  std::mt19937_64 rng(99);
  std::vector<NodeId> nbrs;
  for (int trial = 0; trial < 500; ++trial) {
    const auto x = static_cast<NodeId>(rng() % n);
    const auto y = static_cast<NodeId>(rng() % n);
    ShuffleExchangeDistanceStepper stepper(h, y);
    const std::uint32_t here = stepper.reset(x);
    if (here == 0) continue;
    shuffle_exchange_neighbors(h, x, nbrs);
    for (const NodeId w : nbrs) {
      const std::uint32_t want = shuffle_exchange_distance(h, w, y);
      const std::uint32_t got = stepper.probe(w, here - 1);
      if (want <= here - 1) {
        EXPECT_EQ(got, want) << "x=" << x << " y=" << y << " w=" << w;
      } else {
        EXPECT_GT(got, here - 1) << "x=" << x << " y=" << y << " w=" << w;
      }
    }
  }
}

TEST(ShuffleExchange, FreeStepFunctionMatchesFormula) {
  const unsigned h = 7;
  const std::uint64_t n = shuffle_exchange_num_nodes(h);
  std::mt19937_64 rng(13);
  std::vector<NodeId> nbrs;
  for (int trial = 0; trial < 200; ++trial) {
    const auto y = static_cast<NodeId>(rng() % n);
    auto x = static_cast<NodeId>(rng() % n);
    DistanceWitness w;
    std::uint32_t dist = shuffle_exchange_distance_witness(h, x, y, &w);
    for (int s = 0; s < 20; ++s) {
      shuffle_exchange_neighbors(h, x, nbrs);
      const NodeId nxt = nbrs[rng() % nbrs.size()];
      dist = shuffle_exchange_distance_step(h, x, nxt, y, dist, &w);
      ASSERT_EQ(dist, shuffle_exchange_distance(h, nxt, y)) << "trial=" << trial << " s=" << s;
      x = nxt;
    }
  }
}

TEST(ShuffleExchange, NeighborsFixedMatchesVector) {
  for (unsigned h = 1; h <= 6; ++h) {
    const std::uint64_t n = shuffle_exchange_num_nodes(h);
    std::vector<NodeId> expected;
    NodeId fixed[3];
    for (std::uint64_t x = 0; x < n; ++x) {
      shuffle_exchange_neighbors(h, static_cast<NodeId>(x), expected);
      const int count = shuffle_exchange_neighbors_fixed(h, static_cast<NodeId>(x), fixed);
      ASSERT_EQ(static_cast<std::size_t>(count), expected.size()) << "h=" << h << " x=" << x;
      for (int i = 0; i < count; ++i) EXPECT_EQ(fixed[i], expected[static_cast<std::size_t>(i)]);
    }
  }
}

}  // namespace
}  // namespace ftdb
