// Tests for the synchronous store-and-forward engine: conservation, latency
// accounting, degradation under faults, and full service after reconfiguration.
#include <gtest/gtest.h>

#include "ft/ft_debruijn.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"
#include "topology/debruijn.hpp"

namespace ftdb::sim {
namespace {

TEST(Engine, SinglePacketLatencyEqualsDistance) {
  const Graph target = debruijn_base2(4);
  const Machine m = Machine::direct(target);
  // 0 -> 15: BFS distance in B_{2,4} is 4 (append four 1s).
  const std::vector<Packet> packets{{0, 0, 15, 0}};
  const SimStats stats = run_packets(m, target, packets);
  EXPECT_EQ(stats.injected, 1u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.undeliverable, 0u);
  EXPECT_EQ(stats.max_latency, 4u);
  EXPECT_EQ(stats.total_hops, 4u);
}

TEST(Engine, SelfPacketDeliversInstantly) {
  const Graph target = debruijn_base2(3);
  const Machine m = Machine::direct(target);
  const SimStats stats = run_packets(m, target, {{0, 3, 3, 0}});
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.total_latency, 0u);
}

TEST(Engine, PacketConservation) {
  const Graph target = debruijn_base2(5);
  const Machine m = Machine::direct(target);
  const auto packets = uniform_traffic(32, 500, 4, 123);
  const SimStats stats = run_packets(m, target, packets);
  EXPECT_EQ(stats.injected, 500u);
  EXPECT_EQ(stats.delivered + stats.undeliverable, stats.injected);
  EXPECT_EQ(stats.undeliverable, 0u);  // healthy machine delivers everything
}

TEST(Engine, ContentionIncreasesLatency) {
  const Graph target = debruijn_base2(4);
  const Machine m = Machine::direct(target);
  // Everyone sends to node 0 simultaneously: the two links into 0 serialize.
  std::vector<Packet> packets;
  for (NodeId s = 1; s < 16; ++s) packets.push_back({s, s, 0, 0});
  const SimStats stats = run_packets(m, target, packets);
  EXPECT_EQ(stats.delivered, 15u);
  // 15 packets over 2 incoming links takes at least ceil(15/2) cycles.
  EXPECT_GE(stats.cycles, 8u);
  EXPECT_GT(stats.max_queue_depth, 1u);
}

TEST(Engine, MaxCyclesCutsRunShort) {
  const Graph target = debruijn_base2(4);
  const Machine m = Machine::direct(target);
  std::vector<Packet> packets;
  for (NodeId s = 1; s < 16; ++s) packets.push_back({s, s, 0, 0});
  EngineOptions options;
  options.max_cycles = 2;
  const SimStats stats = run_packets(m, target, packets, options);
  EXPECT_LE(stats.cycles, 2u);
  EXPECT_LT(stats.delivered, 15u);
  // Packets cut off in flight are accounted, not lost: the conservation
  // invariant holds on the truncated path too.
  EXPECT_GT(stats.timed_out, 0u);
  EXPECT_EQ(stats.injected, stats.delivered + stats.undeliverable + stats.timed_out);
}

TEST(Engine, TimedOutAccountsEveryInFlightPacket) {
  // A congested hotspot run truncated mid-flight: every injected packet must
  // land in exactly one of delivered / undeliverable / timed_out.
  const Graph target = debruijn_base2(5);
  const Machine m = Machine::direct(target);
  const auto packets = hotspot_traffic(32, 600, 0, 0.8, 11, /*packets_per_cycle=*/64);
  for (const std::uint64_t cap : {1u, 3u, 7u, 20u, 0u}) {
    EngineOptions options;
    options.max_cycles = cap;
    const SimStats stats = run_packets(m, target, packets, options);
    EXPECT_EQ(stats.injected, stats.delivered + stats.undeliverable + stats.timed_out)
        << "max_cycles=" << cap;
    if (cap == 0) EXPECT_EQ(stats.timed_out, 0u);  // drained runs time nothing out
  }
}

TEST(Engine, TimedOutZeroOnDrainedFaultyRun) {
  const Graph target = debruijn_base2(4);
  const FaultSet faults(16, {1, 8});
  const Machine degraded = Machine::direct_with_faults(target, faults);
  const auto packets = uniform_traffic(16, 300, 2, 7);
  const SimStats stats = run_packets(degraded, target, packets);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_EQ(stats.injected, stats.delivered + stats.undeliverable + stats.timed_out);
}

TEST(Engine, SimulatorReusableAcrossTruncatedRuns) {
  // A PacketSimulator whose previous run was cut off mid-flight must start
  // the next run from clean queues — the collective executor depends on it.
  const Graph target = debruijn_base2(4);
  const Machine m = Machine::direct(target);
  PacketSimulator sim(m, target);
  std::vector<Packet> packets;
  for (NodeId s = 1; s < 16; ++s) packets.push_back({s, s, 0, 0});
  const SimStats cut = sim.run(packets, 2);
  EXPECT_GT(cut.timed_out, 0u);
  const SimStats full = sim.run(packets);
  EXPECT_EQ(full.delivered, 15u);
  EXPECT_EQ(full.timed_out, 0u);
  const SimStats oracle = run_packets(m, target, packets);
  EXPECT_EQ(full.cycles, oracle.cycles);
  EXPECT_EQ(full.total_latency, oracle.total_latency);
}

TEST(Engine, FaultyBareMachineDropsTraffic) {
  // PERF2 shape, small scale: faults on the bare target make some packets
  // undeliverable and lengthen surviving routes.
  const Graph target = debruijn_base2(4);
  const FaultSet faults(16, {1, 8});
  const Machine degraded = Machine::direct_with_faults(target, faults);
  const auto packets = uniform_traffic(16, 300, 2, 7);
  const SimStats stats = run_packets(degraded, target, packets);
  EXPECT_GT(stats.undeliverable, 0u);
  EXPECT_EQ(stats.delivered + stats.undeliverable, stats.injected);
}

TEST(Engine, ReconfiguredMachineDeliversEverything) {
  const Graph target = debruijn_base2(4);
  const Graph ft = ft_debruijn_base2(4, 2);
  const FaultSet faults(ft.num_nodes(), {3, 11});
  const Machine m = Machine::reconfigured(ft, faults, target.num_nodes());
  const auto packets = uniform_traffic(16, 300, 2, 7);
  const SimStats stats = run_packets(m, target, packets);
  EXPECT_EQ(stats.undeliverable, 0u);
  EXPECT_EQ(stats.delivered, stats.injected);
}

TEST(Engine, ReconfiguredLatencyMatchesHealthyTarget) {
  // The FT machine presents the identical logical topology, so latency under
  // identical traffic matches the healthy target exactly (deterministic
  // engine) — the operational content of Theorem 1.
  const Graph target = debruijn_base2(5);
  const Graph ft = ft_debruijn_base2(5, 3);
  const auto packets = uniform_traffic(32, 400, 4, 99);

  const Machine healthy = Machine::direct(target);
  const SimStats base = run_packets(healthy, target, packets);

  const FaultSet faults(ft.num_nodes(), {2, 17, 30});
  const Machine reconf = Machine::reconfigured(ft, faults, target.num_nodes());
  const SimStats after = run_packets(reconf, target, packets);

  EXPECT_EQ(after.delivered, base.delivered);
  EXPECT_EQ(after.total_latency, base.total_latency);
  EXPECT_EQ(after.max_latency, base.max_latency);
  EXPECT_EQ(after.cycles, base.cycles);
}

TEST(Engine, AllRouterBackendsProduceIdenticalTraffic) {
  // The backends share one canonical next-hop policy, so the cycle-accurate
  // simulation — queues, latencies, drain time — must be bit-identical no
  // matter which backend routes it.
  const Graph target = debruijn_base2(5);
  const auto packets = uniform_traffic(32, 400, 4, 2024);
  auto run_with = [&](const Machine& machine, RouterOptions::Backend backend) {
    EngineOptions options;
    options.router.backend = backend;
    return run_packets(machine, target, packets, options);
  };
  auto expect_same = [](const SimStats& a, const SimStats& b, const char* what) {
    EXPECT_EQ(a.delivered, b.delivered) << what;
    EXPECT_EQ(a.undeliverable, b.undeliverable) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.total_latency, b.total_latency) << what;
    EXPECT_EQ(a.max_latency, b.max_latency) << what;
    EXPECT_EQ(a.total_hops, b.total_hops) << what;
    EXPECT_EQ(a.max_queue_depth, b.max_queue_depth) << what;
  };

  const Machine healthy = Machine::direct(target);
  const SimStats table = run_with(healthy, RouterOptions::Backend::Table);
  expect_same(table, run_with(healthy, RouterOptions::Backend::Compressed), "healthy/compressed");
  expect_same(table, run_with(healthy, RouterOptions::Backend::Implicit), "healthy/implicit");
  expect_same(table, run_with(healthy, RouterOptions::Backend::Auto), "healthy/auto");

  const FaultSet faults(32, {3, 17});
  const Machine degraded = Machine::direct_with_faults(target, faults);
  const SimStats dtable = run_with(degraded, RouterOptions::Backend::Table);
  expect_same(dtable, run_with(degraded, RouterOptions::Backend::Compressed),
              "degraded/compressed");
  expect_same(dtable, run_with(degraded, RouterOptions::Backend::Auto), "degraded/auto");
}

TEST(Engine, PermutationTrafficDrains) {
  const Graph target = debruijn_base2(5);
  const Machine m = Machine::direct(target);
  const auto packets = permutation_traffic(bit_reversal_permutation(5));
  const SimStats stats = run_packets(m, target, packets);
  EXPECT_EQ(stats.delivered, 32u);
  EXPECT_GT(stats.cycles, 0u);
}

}  // namespace
}  // namespace ftdb::sim
