// Tests for the simulated machine abstraction (src/sim/network).
#include <gtest/gtest.h>

#include "ft/ft_debruijn.hpp"
#include "sim/network.hpp"
#include "topology/debruijn.hpp"

namespace ftdb::sim {
namespace {

TEST(Machine, DirectIsIdentity) {
  const Machine m = Machine::direct(debruijn_base2(3));
  EXPECT_EQ(m.num_logical(), 8u);
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(m.to_physical[v], v);
    EXPECT_EQ(m.to_logical[v], v);
    EXPECT_FALSE(m.dead[v]);
  }
}

TEST(Machine, DirectWithFaultsMarksDead) {
  const FaultSet faults(8, {2, 6});
  const Machine m = Machine::direct_with_faults(debruijn_base2(3), faults);
  EXPECT_TRUE(m.dead[2]);
  EXPECT_TRUE(m.dead[6]);
  EXPECT_FALSE(m.dead[0]);
}

TEST(Machine, DirectWithFaultsUniverseMismatchThrows) {
  const FaultSet faults(9, {2});
  EXPECT_THROW(Machine::direct_with_faults(debruijn_base2(3), faults), std::invalid_argument);
}

TEST(Machine, ReconfiguredMapsAroundFaults) {
  const Graph ft = ft_debruijn_base2(3, 1);  // 9 nodes
  const FaultSet faults(9, {4});
  const Machine m = Machine::reconfigured(ft, faults, 8);
  EXPECT_EQ(m.num_logical(), 8u);
  EXPECT_EQ(m.to_physical[3], 3u);
  EXPECT_EQ(m.to_physical[4], 5u);  // skips the fault
  EXPECT_EQ(m.to_logical[5], 4u);
  EXPECT_EQ(m.to_logical[4], kInvalidNode);
  EXPECT_TRUE(m.dead[4]);
}

TEST(Machine, ReconfiguredTooManyFaultsThrows) {
  const Graph ft = ft_debruijn_base2(3, 1);
  const FaultSet faults(9, {0, 1});
  EXPECT_THROW(Machine::reconfigured(ft, faults, 8), std::invalid_argument);
}

TEST(Machine, LiveLogicalGraph_HealthyDirectEqualsTarget) {
  const Graph target = debruijn_base2(4);
  const Machine m = Machine::direct(target);
  EXPECT_TRUE(m.live_logical_graph(target).same_structure(target));
}

TEST(Machine, LiveLogicalGraph_FaultsRemoveIncidentEdges) {
  const Graph target = debruijn_base2(3);
  const FaultSet faults(8, {1});
  const Machine m = Machine::direct_with_faults(target, faults);
  const Graph live = m.live_logical_graph(target);
  EXPECT_EQ(live.degree(1), 0u);
  EXPECT_LT(live.num_edges(), target.num_edges());
}

TEST(Machine, LiveLogicalGraph_ReconfiguredPresentsFullTarget) {
  // The paper's guarantee, operationally: after reconfiguration every target
  // edge is a live physical link.
  const Graph target = debruijn_base2(4);
  const Graph ft = ft_debruijn_base2(4, 2);
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const FaultSet faults = FaultSet::random(ft.num_nodes(), 2, rng);
    const Machine m = Machine::reconfigured(ft, faults, target.num_nodes());
    EXPECT_TRUE(m.live_logical_graph(target).same_structure(target)) << "trial " << trial;
  }
}

TEST(EdgeFaults, ConvertedToCoveringNodeFaults) {
  const Graph g = debruijn_base2(3);
  const std::vector<Edge> bad{{0, 1}, {1, 2}};
  const auto nodes = edge_faults_to_node_faults(g, bad);
  // Node 1 covers both faulty edges.
  EXPECT_EQ(nodes, (std::vector<NodeId>{1}));
}

TEST(EdgeFaults, DisjointEdgesNeedTwoNodes) {
  const Graph g = debruijn_base2(3);
  const std::vector<Edge> bad{{0, 1}, {6, 7}};
  const auto nodes = edge_faults_to_node_faults(g, bad);
  EXPECT_EQ(nodes.size(), 2u);
}

TEST(EdgeFaults, EmptyInput) {
  EXPECT_TRUE(edge_faults_to_node_faults(debruijn_base2(3), {}).empty());
}

}  // namespace
}  // namespace ftdb::sim
