// Tests for routing: BFS tables, de Bruijn shift routing and shuffle-exchange
// routing.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "sim/routing.hpp"
#include "topology/debruijn.hpp"
#include "topology/shuffle_exchange.hpp"

namespace ftdb::sim {
namespace {

TEST(RoutingTable, PathsAreShortest) {
  const Graph g = debruijn_base2(4);
  const RoutingTable table(g);
  for (NodeId s = 0; s < 16; ++s) {
    const auto dist = bfs_distances(g, s);
    for (NodeId d = 0; d < 16; ++d) {
      EXPECT_EQ(table.distance(d, s), dist[d]) << "s=" << +s << " d=" << +d;
      const auto path = table.path(s, d);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.size() - 1, dist[d]);
      EXPECT_TRUE(route_is_walk(g, path, s, d));
    }
  }
}

TEST(RoutingTable, UnreachableReported) {
  const Graph g = make_graph(4, {{0, 1}, {2, 3}});
  const RoutingTable table(g);
  EXPECT_FALSE(table.reachable(2, 0));
  EXPECT_TRUE(table.path(0, 2).empty());
  EXPECT_TRUE(table.reachable(1, 0));
}

TEST(RoutingTable, SelfPath) {
  const Graph g = debruijn_base2(3);
  const RoutingTable table(g);
  const auto path = table.path(5, 5);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 5u);
}

class ShiftRouteTest : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(ShiftRouteTest, AllPairsValidAndAtMostHHops) {
  const auto [m, h] = GetParam();
  const Graph g = debruijn_graph({.base = m, .digits = h});
  const std::uint64_t n = g.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      const auto route = debruijn_shift_route(m, h, s, d);
      EXPECT_TRUE(route_is_walk(g, route, s, d)) << "s=" << +s << " d=" << +d;
      EXPECT_LE(route.size(), h + 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShiftRouteTest,
                         ::testing::Values(std::pair<std::uint64_t, unsigned>{2, 3},
                                           std::pair<std::uint64_t, unsigned>{2, 5},
                                           std::pair<std::uint64_t, unsigned>{3, 3},
                                           std::pair<std::uint64_t, unsigned>{4, 2}));

TEST(ShiftRoute, OverlapShortensRoute) {
  // src = 0b0011, dst = 0b1100: the low 2 bits of src (11) equal the high 2
  // bits of dst, so only 2 digits need shifting: route length 2.
  const auto route = debruijn_shift_route(2, 4, 0b0011, 0b1100);
  EXPECT_EQ(route.size(), 3u);  // 2 hops
}

TEST(ShiftRoute, SelfRouteIsTrivial) {
  const auto route = debruijn_shift_route(2, 4, 9, 9);
  ASSERT_EQ(route.size(), 1u);
  EXPECT_EQ(route[0], 9u);
}

TEST(ShiftRoute, OutOfRangeThrows) {
  EXPECT_THROW(debruijn_shift_route(2, 3, 8, 0), std::out_of_range);
}

TEST(ShiftRoute, NeverLongerThanShortestPathPlusSlack) {
  // The shift route is within h of optimal by construction; sanity-check it
  // is never absurdly long vs BFS.
  const Graph g = debruijn_base2(5);
  for (NodeId s = 0; s < 32; s += 3) {
    const auto dist = bfs_distances(g, s);
    for (NodeId d = 0; d < 32; d += 5) {
      const auto route = debruijn_shift_route(2, 5, s, d);
      EXPECT_LE(route.size() - 1, static_cast<std::size_t>(dist[d]) + 5);
    }
  }
}

class SeRouteTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SeRouteTest, AllPairsValidAndAtMost2hHops) {
  const unsigned h = GetParam();
  const Graph g = shuffle_exchange_graph(h);
  const std::uint64_t n = g.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      const auto route = shuffle_exchange_route(h, s, d);
      EXPECT_TRUE(route_is_walk(g, route, s, d)) << "s=" << +s << " d=" << +d;
      EXPECT_LE(route.size(), 2u * h + 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeRouteTest, ::testing::Values(2, 3, 4, 5, 6));

TEST(SeRoute, OutOfRangeThrows) {
  EXPECT_THROW(shuffle_exchange_route(3, 0, 9), std::out_of_range);
}

TEST(RouteIsWalk, RejectsBadRoutes) {
  const Graph g = debruijn_base2(3);
  EXPECT_FALSE(route_is_walk(g, {}, 0, 1));
  EXPECT_FALSE(route_is_walk(g, {0, 1}, 0, 2));     // wrong endpoint
  EXPECT_FALSE(route_is_walk(g, {0, 5, 1}, 0, 1));  // 0-5 not an edge
}

}  // namespace
}  // namespace ftdb::sim
