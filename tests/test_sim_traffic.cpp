// Tests for the traffic generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/traffic.hpp"

namespace ftdb::sim {
namespace {

TEST(UniformTraffic, DeterministicAndInRange) {
  const auto a = uniform_traffic(16, 100, 4, 42);
  const auto b = uniform_traffic(16, 100, 4, 42);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_LT(a[i].src, 16u);
    EXPECT_LT(a[i].dst, 16u);
  }
}

TEST(UniformTraffic, InjectionRateHonored) {
  const auto packets = uniform_traffic(8, 10, 2, 1);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].inject_cycle, i / 2);
  }
}

TEST(UniformTraffic, ZeroRateDefaultsToOne) {
  const auto packets = uniform_traffic(8, 4, 0, 1);
  EXPECT_EQ(packets[3].inject_cycle, 3u);
}

TEST(UniformTraffic, EmptyMachineThrows) {
  EXPECT_THROW(uniform_traffic(0, 10, 1, 1), std::invalid_argument);
}

TEST(PermutationTraffic, OnePacketPerSource) {
  const auto packets = permutation_traffic({2, 0, 1});
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].src, 0u);
  EXPECT_EQ(packets[0].dst, 2u);
  EXPECT_EQ(packets[2].dst, 1u);
  for (const auto& p : packets) EXPECT_EQ(p.inject_cycle, 0u);
}

TEST(BitReversal, IsInvolutionAndPermutation) {
  for (unsigned h : {3u, 4u, 5u}) {
    const auto perm = bit_reversal_permutation(h);
    std::vector<NodeId> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
    for (std::size_t x = 0; x < perm.size(); ++x) EXPECT_EQ(perm[perm[x]], x);
  }
}

TEST(BitReversal, KnownValues) {
  const auto perm = bit_reversal_permutation(3);
  EXPECT_EQ(perm[0b001], 0b100u);
  EXPECT_EQ(perm[0b110], 0b011u);
  EXPECT_EQ(perm[0b101], 0b101u);
}

TEST(Transpose, SwapsHalves) {
  const auto perm = transpose_permutation(4);
  EXPECT_EQ(perm[0b0111], 0b1101u);  // hi=01 lo=11 -> hi=11 lo=01
  EXPECT_EQ(perm[perm[0b0111]], 0b0111u);  // involution
}

TEST(Transpose, OddHThrows) { EXPECT_THROW(transpose_permutation(3), std::invalid_argument); }

TEST(ShufflePermutation, IsRotation) {
  const auto perm = shuffle_permutation(3);
  EXPECT_EQ(perm[0b011], 0b110u);
  EXPECT_EQ(perm[0b100], 0b001u);
  std::vector<NodeId> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(HotspotTraffic, FractionRoughlyHonored) {
  const NodeId hot = 3;
  const auto packets = hotspot_traffic(64, 2000, hot, 0.5, 9);
  const auto hits = static_cast<std::size_t>(
      std::count_if(packets.begin(), packets.end(), [&](const Packet& p) { return p.dst == hot; }));
  // 0.5 fraction plus ~1/64 background: expect between 40% and 65%.
  EXPECT_GT(hits, packets.size() * 2 / 5);
  EXPECT_LT(hits, packets.size() * 13 / 20);
}

TEST(HotspotTraffic, BadHotNodeThrows) {
  EXPECT_THROW(hotspot_traffic(8, 10, 8, 0.5, 1), std::out_of_range);
}

TEST(HotspotTraffic, EmptyMachineThrows) {
  EXPECT_THROW(hotspot_traffic(0, 10, 0, 0.5, 1), std::invalid_argument);
}

TEST(HotspotTraffic, FractionOutsideUnitIntervalThrows) {
  // bernoulli_distribution is UB outside [0, 1]; the generator must reject
  // such inputs (including NaN) instead of handing them to the distribution.
  EXPECT_THROW(hotspot_traffic(8, 10, 0, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_traffic(8, 10, 0, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_traffic(8, 10, 0, std::nan(""), 1), std::invalid_argument);
  // The closed endpoints are legal.
  EXPECT_EQ(hotspot_traffic(8, 10, 0, 0.0, 1).size(), 10u);
  EXPECT_EQ(hotspot_traffic(8, 10, 0, 1.0, 1).size(), 10u);
}

TEST(HotspotTraffic, DefaultInjectionRatePreserved) {
  // packets_per_cycle = 0 keeps the historical max(logical_nodes / 4, 1).
  const auto legacy = hotspot_traffic(64, 100, 3, 0.5, 9);
  const auto explicit_rate = hotspot_traffic(64, 100, 3, 0.5, 9, 16);
  ASSERT_EQ(legacy.size(), explicit_rate.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].inject_cycle, i / 16);
    EXPECT_EQ(legacy[i].inject_cycle, explicit_rate[i].inject_cycle);
    EXPECT_EQ(legacy[i].src, explicit_rate[i].src);
    EXPECT_EQ(legacy[i].dst, explicit_rate[i].dst);
  }
}

TEST(HotspotTraffic, CustomInjectionRateHonored) {
  const auto packets = hotspot_traffic(64, 10, 3, 0.5, 9, 2);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].inject_cycle, i / 2);
  }
}

}  // namespace
}  // namespace ftdb::sim
