// Tests for the traffic generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/traffic.hpp"

namespace ftdb::sim {
namespace {

TEST(UniformTraffic, DeterministicAndInRange) {
  const auto a = uniform_traffic(16, 100, 4, 42);
  const auto b = uniform_traffic(16, 100, 4, 42);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_LT(a[i].src, 16u);
    EXPECT_LT(a[i].dst, 16u);
  }
}

TEST(UniformTraffic, InjectionRateHonored) {
  const auto packets = uniform_traffic(8, 10, 2, 1);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].inject_cycle, i / 2);
  }
}

TEST(UniformTraffic, ZeroRateDefaultsToOne) {
  const auto packets = uniform_traffic(8, 4, 0, 1);
  EXPECT_EQ(packets[3].inject_cycle, 3u);
}

TEST(UniformTraffic, EmptyMachineThrows) {
  EXPECT_THROW(uniform_traffic(0, 10, 1, 1), std::invalid_argument);
}

TEST(PermutationTraffic, OnePacketPerSource) {
  const auto packets = permutation_traffic({2, 0, 1});
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].src, 0u);
  EXPECT_EQ(packets[0].dst, 2u);
  EXPECT_EQ(packets[2].dst, 1u);
  for (const auto& p : packets) EXPECT_EQ(p.inject_cycle, 0u);
}

TEST(BitReversal, IsInvolutionAndPermutation) {
  for (unsigned h : {3u, 4u, 5u}) {
    const auto perm = bit_reversal_permutation(h);
    std::vector<NodeId> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
    for (std::size_t x = 0; x < perm.size(); ++x) EXPECT_EQ(perm[perm[x]], x);
  }
}

TEST(BitReversal, KnownValues) {
  const auto perm = bit_reversal_permutation(3);
  EXPECT_EQ(perm[0b001], 0b100u);
  EXPECT_EQ(perm[0b110], 0b011u);
  EXPECT_EQ(perm[0b101], 0b101u);
}

TEST(Transpose, SwapsHalves) {
  const auto perm = transpose_permutation(4);
  EXPECT_EQ(perm[0b0111], 0b1101u);  // hi=01 lo=11 -> hi=11 lo=01
  EXPECT_EQ(perm[perm[0b0111]], 0b0111u);  // involution
}

TEST(Transpose, OddHThrows) { EXPECT_THROW(transpose_permutation(3), std::invalid_argument); }

TEST(ShufflePermutation, IsRotation) {
  const auto perm = shuffle_permutation(3);
  EXPECT_EQ(perm[0b011], 0b110u);
  EXPECT_EQ(perm[0b100], 0b001u);
  std::vector<NodeId> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(HotspotTraffic, FractionRoughlyHonored) {
  const NodeId hot = 3;
  const auto packets = hotspot_traffic(64, 2000, hot, 0.5, 9);
  const auto hits = static_cast<std::size_t>(
      std::count_if(packets.begin(), packets.end(), [&](const Packet& p) { return p.dst == hot; }));
  // 0.5 fraction plus ~1/64 background: expect between 40% and 65%.
  EXPECT_GT(hits, packets.size() * 2 / 5);
  EXPECT_LT(hits, packets.size() * 13 / 20);
}

TEST(HotspotTraffic, BadHotNodeThrows) {
  EXPECT_THROW(hotspot_traffic(8, 10, 8, 0.5, 1), std::out_of_range);
}

TEST(HotspotTraffic, EmptyMachineThrows) {
  EXPECT_THROW(hotspot_traffic(0, 10, 0, 0.5, 1), std::invalid_argument);
}

TEST(HotspotTraffic, FractionOutsideUnitIntervalThrows) {
  // bernoulli_distribution is UB outside [0, 1]; the generator must reject
  // such inputs (including NaN) instead of handing them to the distribution.
  EXPECT_THROW(hotspot_traffic(8, 10, 0, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_traffic(8, 10, 0, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_traffic(8, 10, 0, std::nan(""), 1), std::invalid_argument);
  // The closed endpoints are legal.
  EXPECT_EQ(hotspot_traffic(8, 10, 0, 0.0, 1).size(), 10u);
  EXPECT_EQ(hotspot_traffic(8, 10, 0, 1.0, 1).size(), 10u);
}

TEST(HotspotTraffic, DefaultInjectionRatePreserved) {
  // packets_per_cycle = 0 keeps the historical max(logical_nodes / 4, 1).
  const auto legacy = hotspot_traffic(64, 100, 3, 0.5, 9);
  const auto explicit_rate = hotspot_traffic(64, 100, 3, 0.5, 9, 16);
  ASSERT_EQ(legacy.size(), explicit_rate.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].inject_cycle, i / 16);
    EXPECT_EQ(legacy[i].inject_cycle, explicit_rate[i].inject_cycle);
    EXPECT_EQ(legacy[i].src, explicit_rate[i].src);
    EXPECT_EQ(legacy[i].dst, explicit_rate[i].dst);
  }
}

TEST(HotspotTraffic, CustomInjectionRateHonored) {
  const auto packets = hotspot_traffic(64, 10, 3, 0.5, 9, 2);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].inject_cycle, i / 2);
  }
}

TEST(HotspotTraffic, VectorWithOneHotNodeMatchesTheLegacyStream) {
  // The vector form must consume the RNG stream exactly like the historical
  // single-node overload when only one hot node is given — campaign reports
  // produced before the multi-hotspot extension stay byte-identical.
  const auto legacy = hotspot_traffic(64, 500, NodeId{3}, 0.5, 9);
  const auto vec = hotspot_traffic(64, 500, std::vector<NodeId>{3}, 0.5, 9);
  ASSERT_EQ(legacy.size(), vec.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].src, vec[i].src);
    EXPECT_EQ(legacy[i].dst, vec[i].dst);
    EXPECT_EQ(legacy[i].inject_cycle, vec[i].inject_cycle);
  }
}

TEST(HotspotTraffic, EveryHotNodeReceivesTraffic) {
  const std::vector<NodeId> hot = {1, 10, 40};
  const auto packets = hotspot_traffic(64, 3000, hot, 1.0, 7);
  std::size_t hits[3] = {0, 0, 0};
  for (const Packet& p : packets) {
    // fraction_hot = 1: every destination is one of the hot nodes.
    const auto it = std::find(hot.begin(), hot.end(), p.dst);
    ASSERT_NE(it, hot.end()) << "dst " << p.dst;
    ++hits[it - hot.begin()];
  }
  for (const std::size_t h : hits) EXPECT_GT(h, packets.size() / 6);
}

TEST(HotspotTraffic, EmptyHotSetThrows) {
  EXPECT_THROW(hotspot_traffic(8, 10, std::vector<NodeId>{}, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_traffic(8, 10, std::vector<NodeId>{3, 8}, 0.5, 1), std::out_of_range);
}

TEST(ZipfTraffic, DeterministicAndInRange) {
  const auto a = zipf_traffic(32, 400, 1.2, 11);
  const auto b = zipf_traffic(32, 400, 1.2, 11);
  ASSERT_EQ(a.size(), 400u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_LT(a[i].src, 32u);
    EXPECT_LT(a[i].dst, 32u);
    EXPECT_EQ(a[i].inject_cycle, i);  // packets_per_cycle defaults to 1
  }
}

TEST(ZipfTraffic, SkewConcentratesOnLowRanks) {
  const auto packets = zipf_traffic(64, 4000, 1.5, 3);
  std::vector<std::size_t> hits(64, 0);
  for (const Packet& p : packets) ++hits[p.dst];
  // Node 0 is the hottest rank; the tail node is orders of magnitude colder.
  EXPECT_GT(hits[0], packets.size() / 5);
  EXPECT_LT(hits[63], hits[0] / 10);
  // theta = 0 degenerates to uniform: the head holds no special mass.
  const auto flat = zipf_traffic(64, 4000, 0.0, 3);
  std::size_t head = 0;
  for (const Packet& p : flat) head += (p.dst == 0);
  EXPECT_LT(head, flat.size() / 16);
}

TEST(ZipfTraffic, RejectsBadTheta) {
  EXPECT_THROW(zipf_traffic(8, 10, -0.5, 1), std::invalid_argument);
  EXPECT_THROW(zipf_traffic(8, 10, std::nan(""), 1), std::invalid_argument);
  EXPECT_THROW(zipf_traffic(8, 10, std::numeric_limits<double>::infinity(), 1),
               std::invalid_argument);
  EXPECT_THROW(zipf_traffic(0, 10, 1.0, 1), std::invalid_argument);
}

TEST(HotspotBurstTraffic, RotatesTheActiveHotspot) {
  // fraction_hot = 1 pins every packet to the window's active hot node, so
  // the rotation schedule is directly observable: windows of `burst_cycles`
  // cycles take turns across the hot list.
  const std::vector<NodeId> hot = {2, 5};
  const auto packets = hotspot_burst_traffic(8, 24, hot, 1.0, 3, 13, 1);
  ASSERT_EQ(packets.size(), 24u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].inject_cycle, i);
    EXPECT_EQ(packets[i].dst, hot[(i / 3) % 2]) << "packet " << i;
  }
}

TEST(HotspotBurstTraffic, DeterministicWithBackgroundTraffic) {
  const std::vector<NodeId> hot = {0, 3, 6};
  const auto a = hotspot_burst_traffic(16, 300, hot, 0.6, 4, 21);
  const auto b = hotspot_burst_traffic(16, 300, hot, 0.6, 4, 21);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    // Default injection rate matches the hotspot generators: n/4 per cycle.
    EXPECT_EQ(a[i].inject_cycle, i / 4);
  }
}

TEST(HotspotBurstTraffic, ValidationRejectsBadArguments) {
  const std::vector<NodeId> hot = {1};
  EXPECT_THROW(hotspot_burst_traffic(0, 10, hot, 0.5, 4, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_burst_traffic(8, 10, {}, 0.5, 4, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_burst_traffic(8, 10, {9}, 0.5, 4, 1), std::out_of_range);
  EXPECT_THROW(hotspot_burst_traffic(8, 10, hot, 1.5, 4, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_burst_traffic(8, 10, hot, std::nan(""), 4, 1), std::invalid_argument);
  EXPECT_THROW(hotspot_burst_traffic(8, 10, hot, 0.5, 0, 1), std::invalid_argument);
}

TEST(TraceTraffic, ParsesCommentsBlanksAndRoundTrips) {
  const std::string text =
      "# demo trace\n"
      "0 0 7   # first packet\n"
      "\n"
      "0 5 2\n"
      "3 1 6\n";
  const auto packets = trace_traffic(text, 8);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].src, 0u);
  EXPECT_EQ(packets[0].dst, 7u);
  EXPECT_EQ(packets[2].inject_cycle, 3u);
  // Ids are assigned in line order.
  for (std::size_t i = 0; i < packets.size(); ++i) EXPECT_EQ(packets[i].id, i);
  // format_trace emits exactly what trace_traffic accepts (fixed point after
  // one normalization pass).
  const std::string canon = format_trace(packets);
  EXPECT_EQ(canon, format_trace(trace_traffic(canon, 8)));
}

TEST(TraceTraffic, RejectsMalformedAndOutOfRangeLines) {
  EXPECT_THROW(trace_traffic("0 1\n", 8), std::invalid_argument);       // missing dst
  EXPECT_THROW(trace_traffic("0 1 2 3\n", 8), std::invalid_argument);   // trailing token
  EXPECT_THROW(trace_traffic("0 9 0\n", 8), std::out_of_range);         // src >= n
  EXPECT_EQ(trace_traffic("0 9 0\n", 0).size(), 1u);                    // n = 0 skips the check
}

}  // namespace
}  // namespace ftdb::sim
