// Tests for the spare-provisioning reliability model (ABL2 support) and the
// Weibull order-statistic MTTF.
#include <gtest/gtest.h>

#include <cmath>

#include "ft/spares.hpp"

namespace ftdb {
namespace {

/// Independent fixed-step Simpson evaluation of
/// E[T_(k+1:n)] = integral of P[at most k of n Weibull lifetimes <= t] dt —
/// the quadrature cross-check for the beta-function closed form.
double weibull_mttf_reference(std::uint64_t n, unsigned k, double shape, double scale) {
  const auto survival = [&](long double t) {
    const long double q = -std::expm1(-std::pow(t / static_cast<long double>(scale),
                                                static_cast<long double>(shape)));
    return binomial_cdf(n, k, q);
  };
  long double hi = scale;
  while (survival(hi) > 1e-16L) hi *= 2.0L;
  const int steps = 200000;  // even
  const long double dt = hi / steps;
  long double sum = survival(0.0L) + survival(hi);
  for (int i = 1; i < steps; ++i) sum += survival(i * dt) * (i % 2 == 1 ? 4.0L : 2.0L);
  return static_cast<double>(sum * dt / 3.0L);
}

TEST(BinomialCdf, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(static_cast<double>(binomial_cdf(10, 3, 0.0L)), 1.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(binomial_cdf(10, 3, 1.0L)), 0.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(binomial_cdf(10, 10, 1.0L)), 1.0);
}

TEST(BinomialCdf, MatchesHandComputedValues) {
  // n = 4, p = 0.5: P[X <= 1] = (1 + 4) / 16 = 0.3125.
  EXPECT_NEAR(static_cast<double>(binomial_cdf(4, 1, 0.5L)), 0.3125, 1e-12);
  // n = 3, p = 0.1: P[X <= 0] = 0.9^3.
  EXPECT_NEAR(static_cast<double>(binomial_cdf(3, 0, 0.1L)), 0.729, 1e-12);
  // P[X <= n] = 1 always.
  EXPECT_NEAR(static_cast<double>(binomial_cdf(7, 7, 0.3L)), 1.0, 1e-12);
}

TEST(BinomialCdf, MonotoneInK) {
  long double prev = 0.0L;
  for (unsigned k = 0; k <= 20; ++k) {
    const long double v = binomial_cdf(20, k, 0.2L);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SurvivalProbability, IncreasesWithSpares) {
  long double prev = 0.0L;
  for (unsigned k = 0; k <= 8; ++k) {
    const long double v = survival_probability(64, k, 0.01L);
    EXPECT_GT(v, prev) << "k=" << k;
    prev = v;
  }
  EXPECT_GT(prev, 0.999L);
}

TEST(SurvivalProbability, ZeroSparesIsAllHealthy) {
  // k = 0: every one of the N nodes must be healthy.
  const long double expected = std::pow(0.99L, 64);
  EXPECT_NEAR(static_cast<double>(survival_probability(64, 0, 0.01L)),
              static_cast<double>(expected), 1e-12);
}

TEST(MinSpares, FindsThreshold) {
  const unsigned k = min_spares_for_reliability(256, 0.001L, 0.9999L, 16);
  ASSERT_LE(k, 16u);
  EXPECT_GE(survival_probability(256, k, 0.001L), 0.9999L);
  if (k > 0) {
    EXPECT_LT(survival_probability(256, k - 1, 0.001L), 0.9999L);
  }
}

TEST(MinSpares, UnreachableReturnsSentinel) {
  EXPECT_EQ(min_spares_for_reliability(100, 0.9L, 0.9999L, 3), 4u);
}

TEST(WeibullMttf, MinimumLifetimeIdentity) {
  // k = 0: the first failure of n Weibulls is Weibull with scale * n^{-1/shape},
  // so E = scale * Gamma(1 + 1/shape) * n^{-1/shape} exactly.
  for (const double shape : {0.8, 1.0, 1.7, 3.0}) {
    for (const std::uint64_t n : {1ull, 4ull, 36ull, 1000ull}) {
      const double expected =
          100.0 * std::tgamma(1.0 + 1.0 / shape) * std::pow(double(n), -1.0 / shape);
      EXPECT_NEAR(weibull_mttf(n, 0, shape, 100.0), expected, 1e-9 * expected)
          << "n=" << n << " shape=" << shape;
    }
  }
}

TEST(WeibullMttf, ExponentialOrderStatisticHarmonicIdentity) {
  // shape = 1 is the exponential distribution, whose order statistics have
  // the exact harmonic form E[T_(k+1:n)] = scale * sum_{i=0}^{k} 1/(n-i).
  const double scale = 50.0;
  for (const std::uint64_t n : {5ull, 12ull, 40ull}) {
    for (unsigned k = 0; k < 5 && k < n; ++k) {
      double expected = 0.0;
      for (unsigned i = 0; i <= k; ++i) expected += scale / static_cast<double>(n - i);
      EXPECT_NEAR(weibull_mttf(n, k, 1.0, scale), expected, 1e-8 * expected)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(WeibullMttf, QuadratureCrossCheck) {
  // The closed form (small n, k) and the internal adaptive-Simpson fallback
  // (large n forces it) must both match an independent fixed-step Simpson
  // integration of the survival function.
  const struct {
    std::uint64_t n;
    unsigned k;
    double shape;
    double scale;
  } cases[] = {
      {10, 2, 1.5, 400.0},  // closed form
      {36, 4, 0.9, 120.0},  // closed form
      {36, 8, 2.0, 75.0},   // near the cancellation switch
      {600, 6, 1.5, 300.0},  // quadrature path
      {5000, 3, 1.2, 800.0}, // quadrature path, big fabric
  };
  for (const auto& c : cases) {
    const double reference = weibull_mttf_reference(c.n, c.k, c.shape, c.scale);
    const double value = weibull_mttf(c.n, c.k, c.shape, c.scale);
    EXPECT_NEAR(value, reference, 5e-5 * reference)
        << "n=" << c.n << " k=" << c.k << " shape=" << c.shape;
  }
}

TEST(WeibullMttf, MonotoneInSparesAndDegenerateInputs) {
  double prev = 0.0;
  for (unsigned k = 0; k < 8; ++k) {
    const double v = weibull_mttf(20, k, 1.5, 100.0);
    EXPECT_GT(v, prev) << "k=" << k;
    prev = v;
  }
  // k >= n: spares can never be exhausted — no finite MTTF.
  EXPECT_TRUE(std::isnan(weibull_mttf(4, 4, 1.5, 100.0)));
  EXPECT_TRUE(std::isnan(weibull_mttf(0, 0, 1.5, 100.0)));
  EXPECT_TRUE(std::isnan(weibull_mttf(4, 1, 0.0, 100.0)));
}

TEST(PortCost, FormulasAndCrossover) {
  // ours: (N+k)(4(m-1)k+2m); bus: (N+k)(2k+3). Buses always cheaper for k>=1.
  EXPECT_EQ(ours_port_cost(2, 16, 1), 17u * 8u);
  EXPECT_EQ(bus_port_cost(16, 1), 17u * 5u);
  for (unsigned k = 0; k <= 6; ++k) {
    EXPECT_LT(bus_port_cost(64, k), ours_port_cost(2, 64, k) + 1) << "k=" << k;
  }
}

}  // namespace
}  // namespace ftdb
