// Tests for the spare-provisioning reliability model (ABL2 support).
#include <gtest/gtest.h>

#include <cmath>

#include "ft/spares.hpp"

namespace ftdb {
namespace {

TEST(BinomialCdf, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(static_cast<double>(binomial_cdf(10, 3, 0.0L)), 1.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(binomial_cdf(10, 3, 1.0L)), 0.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(binomial_cdf(10, 10, 1.0L)), 1.0);
}

TEST(BinomialCdf, MatchesHandComputedValues) {
  // n = 4, p = 0.5: P[X <= 1] = (1 + 4) / 16 = 0.3125.
  EXPECT_NEAR(static_cast<double>(binomial_cdf(4, 1, 0.5L)), 0.3125, 1e-12);
  // n = 3, p = 0.1: P[X <= 0] = 0.9^3.
  EXPECT_NEAR(static_cast<double>(binomial_cdf(3, 0, 0.1L)), 0.729, 1e-12);
  // P[X <= n] = 1 always.
  EXPECT_NEAR(static_cast<double>(binomial_cdf(7, 7, 0.3L)), 1.0, 1e-12);
}

TEST(BinomialCdf, MonotoneInK) {
  long double prev = 0.0L;
  for (unsigned k = 0; k <= 20; ++k) {
    const long double v = binomial_cdf(20, k, 0.2L);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SurvivalProbability, IncreasesWithSpares) {
  long double prev = 0.0L;
  for (unsigned k = 0; k <= 8; ++k) {
    const long double v = survival_probability(64, k, 0.01L);
    EXPECT_GT(v, prev) << "k=" << k;
    prev = v;
  }
  EXPECT_GT(prev, 0.999L);
}

TEST(SurvivalProbability, ZeroSparesIsAllHealthy) {
  // k = 0: every one of the N nodes must be healthy.
  const long double expected = std::pow(0.99L, 64);
  EXPECT_NEAR(static_cast<double>(survival_probability(64, 0, 0.01L)),
              static_cast<double>(expected), 1e-12);
}

TEST(MinSpares, FindsThreshold) {
  const unsigned k = min_spares_for_reliability(256, 0.001L, 0.9999L, 16);
  ASSERT_LE(k, 16u);
  EXPECT_GE(survival_probability(256, k, 0.001L), 0.9999L);
  if (k > 0) {
    EXPECT_LT(survival_probability(256, k - 1, 0.001L), 0.9999L);
  }
}

TEST(MinSpares, UnreachableReturnsSentinel) {
  EXPECT_EQ(min_spares_for_reliability(100, 0.9L, 0.9999L, 3), 4u);
}

TEST(PortCost, FormulasAndCrossover) {
  // ours: (N+k)(4(m-1)k+2m); bus: (N+k)(2k+3). Buses always cheaper for k>=1.
  EXPECT_EQ(ours_port_cost(2, 16, 1), 17u * 8u);
  EXPECT_EQ(bus_port_cost(16, 1), 17u * 5u);
  for (unsigned k = 0; k <= 6; ++k) {
    EXPECT_LT(bus_port_cost(64, k), ours_port_cost(2, 64, k) + 1) << "k=" << k;
  }
}

}  // namespace
}  // namespace ftdb
