// Tests for the structural-analysis module.
#include <gtest/gtest.h>

#include "analysis/structural.hpp"
#include "graph/algorithms.hpp"
#include "topology/debruijn.hpp"

namespace ftdb::analysis {
namespace {

TEST(SummarizeGraph, MatchesDirectComputations) {
  const Graph g = debruijn_base2(4);
  const StructuralSummary s = summarize_graph(g);
  EXPECT_EQ(s.nodes, 16u);
  EXPECT_EQ(s.edges, g.num_edges());
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.min_degree, 2u);
  EXPECT_EQ(s.diameter, diameter(g));
  EXPECT_TRUE(s.connected);
  EXPECT_GT(s.average_distance, 1.0);
  EXPECT_LT(s.average_distance, s.diameter);
}

TEST(SummarizeGraph, DisconnectedGraph) {
  const Graph g = make_graph(4, {{0, 1}, {2, 3}});
  const StructuralSummary s = summarize_graph(g);
  EXPECT_FALSE(s.connected);
  EXPECT_DOUBLE_EQ(s.average_distance, 1.0);  // only adjacent pairs reachable
}

TEST(StructuralComparisonTable, FtDiameterNeverExceedsTarget) {
  const Table t = structural_comparison_table(4, 5, 2);
  // Rows alternate target / FT variants per h; check diameters column-wise.
  ASSERT_GT(t.num_rows(), 0u);
  std::uint64_t target_diam = 0;
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    const auto& row = t.row(i);
    const std::uint64_t diam = std::stoull(row[6]);
    if (row[0] == "B_{2,h}") {
      target_diam = diam;
    } else if (row[0] == "B^k_{2,h}") {
      EXPECT_LE(diam, target_diam) << "row " << i;
    }
  }
}

TEST(ReconfiguredDiameterReport, AllTrialsPreserveDiameter) {
  const std::string report = reconfigured_diameter_report(5, 2, 20, 7);
  EXPECT_NE(report.find("20/20"), std::string::npos) << report;
}

}  // namespace
}  // namespace ftdb::analysis
