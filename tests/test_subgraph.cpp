// Unit tests for induced subgraphs — the survivor graphs of Hayes's model.
#include <gtest/gtest.h>

#include "graph/subgraph.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  // Square 0-1-2-3 with a chord 0-2.
  Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  auto sub = induced_subgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);  // 0-1, 1-2, 0-2
  EXPECT_EQ(sub.to_original, (std::vector<NodeId>{0, 1, 2}));
}

TEST(InducedSubgraph, RelabelsByRank) {
  Graph g = make_graph(5, {{1, 3}, {3, 4}});
  auto sub = induced_subgraph(g, {4, 1, 3});  // order irrelevant
  ASSERT_EQ(sub.to_original, (std::vector<NodeId>{1, 3, 4}));
  // New labels: 1->0, 3->1, 4->2.
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_FALSE(sub.graph.has_edge(0, 2));
}

TEST(InducedSubgraph, DuplicatesIgnored) {
  Graph g = make_graph(3, {{0, 1}});
  auto sub = induced_subgraph(g, {0, 0, 1, 1});
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
  EXPECT_EQ(sub.graph.num_edges(), 1u);
}

TEST(InducedSubgraphExcluding, RemovesFaultyNodes) {
  Graph g = debruijn_base2(3);
  auto sub = induced_subgraph_excluding(g, {2, 5});
  EXPECT_EQ(sub.graph.num_nodes(), 6u);
  for (NodeId orig : sub.to_original) {
    EXPECT_NE(orig, 2u);
    EXPECT_NE(orig, 5u);
  }
}

TEST(InducedSubgraphExcluding, EdgeCountMatchesManualFilter) {
  Graph g = debruijn_base2(4);
  const std::vector<NodeId> removed{0, 7, 12};
  auto sub = induced_subgraph_excluding(g, removed);
  std::size_t expected = 0;
  auto gone = [&](NodeId v) {
    return std::find(removed.begin(), removed.end(), v) != removed.end();
  };
  for (const Edge& e : g.edges()) {
    if (!gone(e.u) && !gone(e.v)) ++expected;
  }
  EXPECT_EQ(sub.graph.num_edges(), expected);
}

TEST(IsIdentitySubgraph, DetectsContainment) {
  Graph small = make_graph(3, {{0, 1}, {1, 2}});
  Graph big = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  Graph other = make_graph(3, {{0, 2}});
  EXPECT_TRUE(is_identity_subgraph(small, big));
  EXPECT_TRUE(is_identity_subgraph(other, big));
  EXPECT_FALSE(is_identity_subgraph(big, small));
  Graph not_contained = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  Graph host = make_graph(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(is_identity_subgraph(not_contained, host));
}

TEST(IsIdentitySubgraph, PaperNote_FtGraphContainsTarget) {
  // Section III.B: B_{2,h} is an identity subgraph of B^k_{2,h}? Not literally
  // (the modulus differs), but B^0_{2,h} equals B_{2,h} and B^k with k=0
  // offsets r in {0,1} reproduces it. This guards the degenerate case.
  Graph target = debruijn_base2(4);
  Graph ft0 = make_graph(target.num_nodes(), target.edges());
  EXPECT_TRUE(is_identity_subgraph(target, ft0));
  EXPECT_TRUE(target.same_structure(ft0));
}

}  // namespace
}  // namespace ftdb
