// Tests for the tolerance-checking machinery itself (fault-set enumeration,
// binomials, Monte Carlo, and the VF2-based generic checker).
#include <gtest/gtest.h>

#include <set>

#include "ft/ft_debruijn.hpp"
#include "ft/tolerance.hpp"
#include "topology/debruijn.hpp"

namespace ftdb {
namespace {

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(17, 1), 17u);
  EXPECT_EQ(binomial(20, 10), 184756u);
  EXPECT_EQ(binomial(3, 4), 0u);
}

TEST(ForEachFaultSet, EnumeratesAllCombinations) {
  std::set<std::vector<NodeId>> seen;
  for_each_fault_set(5, 2, [&](const std::vector<NodeId>& s) {
    seen.insert(s);
    return true;
  });
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_TRUE(seen.count({0, 1}));
  EXPECT_TRUE(seen.count({3, 4}));
}

TEST(ForEachFaultSet, LexicographicOrder) {
  std::vector<std::vector<NodeId>> order;
  for_each_fault_set(4, 2, [&](const std::vector<NodeId>& s) {
    order.push_back(s);
    return true;
  });
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order.front(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(order.back(), (std::vector<NodeId>{2, 3}));
  for (std::size_t i = 0; i + 1 < order.size(); ++i) EXPECT_LT(order[i], order[i + 1]);
}

TEST(ForEachFaultSet, EarlyStop) {
  int count = 0;
  for_each_fault_set(6, 2, [&](const std::vector<NodeId>&) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST(ForEachFaultSet, KZero) {
  int count = 0;
  for_each_fault_set(6, 0, [&](const std::vector<NodeId>& s) {
    EXPECT_TRUE(s.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(ForEachFaultSet, KGreaterThanNIsEmpty) {
  int count = 0;
  for_each_fault_set(2, 3, [&](const std::vector<NodeId>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(MonotoneEmbeddingSurvives, ReportsViolatedEdge) {
  // Target = path 0-1-2; "FT" graph = path 0-1-2-3 (path is NOT 1-fault
  // tolerant with one spare: killing node 1 leaves 0,2,3 and the monotone
  // embedding needs edges (0,2),(2,3)).
  const Graph target = make_graph(3, {{0, 1}, {1, 2}});
  const Graph ft = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  FaultSet faults(4, {1});
  Edge violation{};
  EXPECT_FALSE(monotone_embedding_survives(target, ft, faults, &violation));
  EXPECT_EQ(violation.u, 0u);
  EXPECT_EQ(violation.v, 1u);  // logical edge (0,1) maps to physical (0,2): missing
}

TEST(CheckToleranceExhaustive, FindsCounterexample) {
  const Graph target = make_graph(3, {{0, 1}, {1, 2}});
  const Graph ft = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto report = check_tolerance_exhaustive(target, ft, 1);
  EXPECT_FALSE(report.tolerant);
  EXPECT_FALSE(report.counterexample_faults.empty());
}

TEST(CheckToleranceExhaustive, CycleWithChordsTolerant) {
  // C_4 with one spare arranged as the FT construction for a cycle: the
  // "+1 spare ring with skip edges" is (1, C_4)-tolerant.
  const Graph target = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  GraphBuilder b(5);
  for (NodeId i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);  // ring
    b.add_edge(i, (i + 2) % 5);  // skip chord absorbs the offset drift
  }
  const auto report = check_tolerance_exhaustive(target, b.build(), 1);
  EXPECT_TRUE(report.tolerant);
  EXPECT_EQ(report.fault_sets_checked, 5u);
}

TEST(CheckToleranceMonteCarlo, DeterministicGivenSeed) {
  const Graph target = debruijn_base2(5);
  const Graph ft = ft_debruijn_base2(5, 2);
  const auto a = check_tolerance_monte_carlo(target, ft, 2, 100, 5);
  const auto b = check_tolerance_monte_carlo(target, ft, 2, 100, 5);
  EXPECT_EQ(a.tolerant, b.tolerant);
  EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked);
}

TEST(CheckToleranceVf2, AgreesWithMonotoneWitnessOnSmallCase) {
  // The generic VF2 checker (no assumption about reconfiguration) must agree
  // that B^1_{2,3} is (1, B_{2,3})-tolerant.
  const Graph target = debruijn_base2(3);
  const Graph ft = ft_debruijn_base2(3, 1);
  const auto vf2 = check_tolerance_exhaustive_vf2(target, ft, 1);
  const auto monotone = check_tolerance_exhaustive(target, ft, 1);
  EXPECT_TRUE(vf2.tolerant);
  EXPECT_TRUE(monotone.tolerant);
  EXPECT_EQ(vf2.fault_sets_checked, monotone.fault_sets_checked);
}

TEST(CheckToleranceVf2, DetectsIntolerance) {
  const Graph target = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});  // triangle
  const Graph ft = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});  // C4: no triangle at all
  const auto report = check_tolerance_exhaustive_vf2(target, ft, 1);
  EXPECT_FALSE(report.tolerant);
}

TEST(PigeonholeLowerBound, FewerThanKSparesCannotWork) {
  // With only k-1 spares, k faults leave fewer than N survivors — no graph
  // on N+k-1 nodes can be (k, G)-tolerant. Executable pigeonhole argument.
  const Graph target = debruijn_base2(3);  // N = 8
  const unsigned k = 2;
  const Graph undersized = ft_debruijn_base2(3, k - 1);  // 9 nodes only
  FaultSet faults(undersized.num_nodes(), {0, 1});
  EXPECT_FALSE(monotone_embedding_survives(target, undersized, faults));
}

}  // namespace
}  // namespace ftdb
