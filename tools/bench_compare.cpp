// bench_compare — diffs two BENCH_*.json files produced by bench_runner and
// emits a markdown table of per-benchmark wall-time ratios plus the geomean
// speedup. Exits non-zero when any shared benchmark regressed beyond the
// threshold, so CI can gate on it:
//
//   bench_compare BENCH_seed.json BENCH_ci.json --stat mean --threshold 1.15
//   bench_compare BENCH_pr2_pre.json BENCH_pr2.json --filter perf_construction
//
// --validate mode checks committed baselines instead of diffing: every given
// file must json_parse as a well-formed ftdb-bench-v1 document (schema stamp,
// benchmarks array shape, wall-time statistics present) — how CI fails fast
// on a stale or hand-mangled BENCH_*.json:
//
//   bench_compare --validate BENCH_*.json
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bench_json.hpp"

namespace {

using ftdb::analysis::JsonValue;

struct Options {
  std::string base_path;
  std::string new_path;
  std::string stat = "min";      // wall_seconds field to compare: min | mean | max
  std::string filter;            // substring filter over benchmark names
  double threshold = 1.15;       // regression flag when new > threshold * base
  double metric_threshold = 1e-9;  // relative drift flag on reported metrics
  bool fail_on_drift = false;    // metric drift also affects the exit code
};

void usage(const char* argv0) {
  std::cout << "usage: " << argv0 << " BASE.json NEW.json [options]\n"
            << "       " << argv0 << " --validate BENCH.json...\n"
            << "  --stat min|mean|max   wall-time statistic to compare (default min)\n"
            << "  --filter SUBSTR       only compare benchmarks whose name contains SUBSTR\n"
            << "  --threshold R         flag a regression when new > R * base (default 1.15)\n"
            << "  --metric-threshold R  flag metric drift when |new-base| > R * |base|\n"
            << "                        (default 1e-9; metrics are seeded and should be exact)\n"
            << "  --fail-on-drift       exit 1 on metric drift too, not just wall regressions\n"
            << "\n"
            << "Prints a markdown table (speedup = base/new; >1 is faster) plus a semantic\n"
            << "drift section diffing the *reported metrics* (cycle counts, makespans,\n"
            << "success rates...) of shared benchmarks, and exits 1 when any shared\n"
            << "benchmark regressed beyond the threshold.\n";
}

std::optional<JsonValue> load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "bench_compare: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    JsonValue doc = ftdb::analysis::json_parse(buf.str());
    const JsonValue* schema = doc.find("schema");
    if (schema == nullptr || schema->string != "ftdb-bench-v1") {
      std::cerr << "bench_compare: " << path << " is not an ftdb-bench-v1 document\n";
      return std::nullopt;
    }
    return doc;
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

struct Sample {
  std::string name;
  double wall = 0.0;
  bool ok = false;
  std::vector<std::pair<std::string, double>> metrics;  // insertion order
};

std::vector<Sample> samples(const JsonValue& doc, const std::string& stat,
                            const std::string& filter) {
  std::vector<Sample> out;
  for (const JsonValue& b : doc.at("benchmarks").array) {
    Sample s;
    s.name = b.at("name").string;
    if (!filter.empty() && s.name.find(filter) == std::string::npos) continue;
    s.ok = b.at("ok").boolean;
    if (s.ok) {
      s.wall = b.at("wall_seconds").at(stat).number;
      if (const JsonValue* metrics = b.find("metrics")) {
        for (const auto& [key, value] : metrics->object) {
          if (value.kind == JsonValue::Kind::Number) s.metrics.emplace_back(key, value.number);
        }
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Timing-valued metrics (per-hop / per-step nanosecond rates) vary with the
/// machine exactly like wall_seconds does, so holding them to the exact-match
/// drift bar would flag every run. They get their own section, gated by the
/// same --threshold ratio as the wall clock.
bool is_timing_metric(const std::string& key) { return key.rfind("ns_per_", 0) == 0; }

const double* find_metric(const Sample& s, const std::string& key) {
  for (const auto& [k, v] : s.metrics) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string fmt_g17(double v) {
  std::ostringstream o;
  o.precision(17);  // max_digits10: drifted values never render identically
  o << v;
  return o.str();
}

/// Diffs the reported metrics of the shared ok/ok benchmark pairs. Wall times
/// drift with the machine; *metrics* are seeded simulation outputs (cycle
/// counts, makespans, success rates) and a change means the code computes
/// something different — semantic drift worth flagging even when timing gates
/// pass. Returns the number of drifted/added/removed metric entries.
std::size_t report_metric_drift(const std::vector<Sample>& base,
                                const std::vector<Sample>& fresh, double rel_threshold) {
  struct Row {
    std::string bench, metric, base_v, new_v, status;
  };
  std::vector<Row> rows;
  std::size_t compared = 0;
  for (const Sample& b : base) {
    const auto it = std::find_if(fresh.begin(), fresh.end(),
                                 [&](const Sample& s) { return s.name == b.name; });
    if (it == fresh.end() || !b.ok || !it->ok) continue;
    for (const auto& [key, bv] : b.metrics) {
      if (is_timing_metric(key)) continue;  // gated by --threshold, not exactness
      const double* nv = find_metric(*it, key);
      if (nv == nullptr) {
        rows.push_back({b.name, key, fmt_g17(bv), "-", "removed"});
        continue;
      }
      ++compared;
      const double denom = std::max(std::abs(bv), 1e-300);
      if (std::abs(*nv - bv) > rel_threshold * denom) {
        rows.push_back({b.name, key, fmt_g17(bv), fmt_g17(*nv), "DRIFT"});
      }
    }
    for (const auto& [key, nv] : it->metrics) {
      if (is_timing_metric(key)) continue;
      if (find_metric(b, key) == nullptr) {
        rows.push_back({b.name, key, "-", fmt_g17(nv), "new"});
      }
    }
  }
  std::cout << "\n## metric drift\n\n";
  if (rows.empty()) {
    std::cout << "no semantic drift across " << compared << " shared metrics\n";
    return 0;
  }
  std::cout << "| benchmark | metric | base | new | status |\n|---|---|---|---|---|\n";
  for (const Row& r : rows) {
    std::cout << "| " << r.bench << " | " << r.metric << " | " << r.base_v << " | "
              << r.new_v << " | " << r.status << " |\n";
  }
  std::cout << "\n" << rows.size() << " metric change" << (rows.size() == 1 ? "" : "s")
            << " across " << compared << " shared metrics\n";
  return rows.size();
}

std::string fmt_ms(double seconds) {
  std::ostringstream o;
  o.setf(std::ios::fixed);
  o.precision(3);
  o << seconds * 1e3;
  return o.str();
}

std::string fmt_ratio(double r) {
  std::ostringstream o;
  o.setf(std::ios::fixed);
  o.precision(2);
  o << r << "x";
  return o.str();
}

/// Compares the timing-valued metrics (ns_per_*) of shared ok/ok pairs under
/// the same ratio gate as wall_seconds. Returns the number of regressions.
std::size_t report_timing_metrics(const std::vector<Sample>& base,
                                  const std::vector<Sample>& fresh, double threshold) {
  struct Row {
    std::string bench, metric;
    double base_v, new_v;
    bool regressed;
  };
  std::vector<Row> rows;
  for (const Sample& b : base) {
    const auto it = std::find_if(fresh.begin(), fresh.end(),
                                 [&](const Sample& s) { return s.name == b.name; });
    if (it == fresh.end() || !b.ok || !it->ok) continue;
    for (const auto& [key, bv] : b.metrics) {
      if (!is_timing_metric(key)) continue;
      const double* nv = find_metric(*it, key);
      if (nv == nullptr) continue;
      rows.push_back({b.name, key, bv, *nv, *nv > threshold * bv});
    }
  }
  if (rows.empty()) return 0;
  std::size_t regressions = 0;
  std::cout << "\n## timing metrics (ns, threshold " << threshold << "x)\n\n"
            << "| benchmark | metric | base | new | speedup | status |\n"
            << "|---|---|---|---|---|---|\n";
  for (const Row& r : rows) {
    if (r.regressed) ++regressions;
    const double speedup = r.new_v > 0.0 ? r.base_v / r.new_v : 0.0;
    std::ostringstream bo, no;
    bo.setf(std::ios::fixed);
    bo.precision(2);
    bo << r.base_v;
    no.setf(std::ios::fixed);
    no.precision(2);
    no << r.new_v;
    std::cout << "| " << r.bench << " | " << r.metric << " | " << bo.str() << " | "
              << no.str() << " | "
              << (speedup > 0.0 ? fmt_ratio(speedup) : std::string("-")) << " | "
              << (r.regressed ? "REGRESSION" : "ok") << " |\n";
  }
  return regressions;
}

/// --validate: each file must be a well-formed ftdb-bench-v1 document whose
/// every benchmark entry has the name/ok/wall_seconds shape the comparison
/// path relies on. Returns the process exit code.
int validate_files(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    std::cerr << "bench_compare: --validate needs at least one file\n";
    return 2;
  }
  int failures = 0;
  for (const std::string& path : paths) {
    const auto doc = load(path);  // json_parse + schema stamp
    if (!doc) {
      ++failures;
      continue;
    }
    try {
      const std::vector<Sample> all = samples(*doc, "mean", "");
      // The wall statistics must all be present on ok entries, not just the
      // one `samples` read.
      for (const JsonValue& b : doc->at("benchmarks").array) {
        if (!b.at("ok").boolean) continue;
        for (const char* stat : {"min", "mean", "max"}) {
          (void)b.at("wall_seconds").at(stat).number;
        }
      }
      std::cout << path << ": valid ftdb-bench-v1, " << all.size() << " benchmarks\n";
    } catch (const std::exception& e) {
      std::cerr << "bench_compare: " << path << ": malformed bench document: " << e.what()
                << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool validate = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--stat") {
      opt.stat = next("--stat");
    } else if (arg == "--filter") {
      opt.filter = next("--filter");
    } else if (arg == "--threshold") {
      try {
        opt.threshold = std::stod(next("--threshold"));
      } catch (const std::exception&) {
        std::cerr << "--threshold expects a number\n";
        return 2;
      }
    } else if (arg == "--metric-threshold") {
      try {
        opt.metric_threshold = std::stod(next("--metric-threshold"));
      } catch (const std::exception&) {
        std::cerr << "--metric-threshold expects a number\n";
        return 2;
      }
    } else if (arg == "--fail-on-drift") {
      opt.fail_on_drift = true;
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (validate) return validate_files(positional);
  if (positional.size() != 2) {
    usage(argv[0]);
    return 2;
  }
  if (opt.stat != "min" && opt.stat != "mean" && opt.stat != "max") {
    std::cerr << "--stat must be min, mean or max\n";
    return 2;
  }
  opt.base_path = positional[0];
  opt.new_path = positional[1];

  const auto base_doc = load(opt.base_path);
  const auto new_doc = load(opt.new_path);
  if (!base_doc || !new_doc) return 2;

  // JsonValue::at throws on shape mismatches (schema-valid file missing
  // "benchmarks"/"name"/"wall_seconds"...); report them like any other
  // malformed input instead of std::terminate-ing.
  std::vector<Sample> base, fresh;
  try {
    base = samples(*base_doc, opt.stat, opt.filter);
    fresh = samples(*new_doc, opt.stat, opt.filter);
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: malformed bench document: " << e.what() << "\n";
    return 2;
  }

  std::cout << "| benchmark | base " << opt.stat << " (ms) | new " << opt.stat
            << " (ms) | speedup | status |\n";
  std::cout << "|---|---|---|---|---|\n";

  double log_sum = 0.0;
  std::size_t shared = 0;
  std::size_t regressions = 0;
  for (const Sample& b : base) {
    const auto it = std::find_if(fresh.begin(), fresh.end(),
                                 [&](const Sample& s) { return s.name == b.name; });
    if (it == fresh.end()) {
      std::cout << "| " << b.name << " | " << fmt_ms(b.wall) << " | - | - | removed |\n";
      continue;
    }
    if (!b.ok || !it->ok) {
      std::cout << "| " << b.name << " | - | - | - | "
                << (it->ok ? "base failed" : "FAILED") << " |\n";
      if (!it->ok) ++regressions;
      continue;
    }
    const double speedup = it->wall > 0.0 ? b.wall / it->wall : 0.0;
    const bool regressed = it->wall > opt.threshold * b.wall;
    if (speedup > 0.0) {
      log_sum += std::log(speedup);
      ++shared;
    }
    if (regressed) ++regressions;
    std::cout << "| " << b.name << " | " << fmt_ms(b.wall) << " | " << fmt_ms(it->wall)
              << " | " << fmt_ratio(speedup) << " | " << (regressed ? "REGRESSION" : "ok")
              << " |\n";
  }
  for (const Sample& s : fresh) {
    const bool known = std::any_of(base.begin(), base.end(),
                                   [&](const Sample& b) { return b.name == s.name; });
    if (!known) {
      std::cout << "| " << s.name << " | - | " << fmt_ms(s.wall) << " | - | new |\n";
    }
  }

  const double geomean = shared > 0 ? std::exp(log_sum / static_cast<double>(shared)) : 1.0;
  std::cout << "\ngeomean speedup over " << shared << " shared benchmarks: "
            << fmt_ratio(geomean) << " (threshold " << opt.threshold << "x, "
            << regressions << " regression" << (regressions == 1 ? "" : "s") << ")\n";

  regressions += report_timing_metrics(base, fresh, opt.threshold);
  const std::size_t drift = report_metric_drift(base, fresh, opt.metric_threshold);
  if (regressions > 0) return 1;
  if (opt.fail_on_drift && drift > 0) return 1;
  return 0;
}
