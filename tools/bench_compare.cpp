// bench_compare — diffs two BENCH_*.json files produced by bench_runner and
// emits a markdown table of per-benchmark wall-time ratios plus the geomean
// speedup. Exits non-zero when any shared benchmark regressed beyond the
// threshold, so CI can gate on it:
//
//   bench_compare BENCH_seed.json BENCH_ci.json --stat mean --threshold 1.15
//   bench_compare BENCH_pr2_pre.json BENCH_pr2.json --filter perf_construction
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bench_json.hpp"

namespace {

using ftdb::analysis::JsonValue;

struct Options {
  std::string base_path;
  std::string new_path;
  std::string stat = "min";      // wall_seconds field to compare: min | mean | max
  std::string filter;            // substring filter over benchmark names
  double threshold = 1.15;       // regression flag when new > threshold * base
};

void usage(const char* argv0) {
  std::cout << "usage: " << argv0 << " BASE.json NEW.json [options]\n"
            << "  --stat min|mean|max   wall-time statistic to compare (default min)\n"
            << "  --filter SUBSTR       only compare benchmarks whose name contains SUBSTR\n"
            << "  --threshold R         flag a regression when new > R * base (default 1.15)\n"
            << "\n"
            << "Prints a markdown table (speedup = base/new; >1 is faster) and exits 1\n"
            << "when any shared benchmark regressed beyond the threshold.\n";
}

std::optional<JsonValue> load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "bench_compare: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    JsonValue doc = ftdb::analysis::json_parse(buf.str());
    const JsonValue* schema = doc.find("schema");
    if (schema == nullptr || schema->string != "ftdb-bench-v1") {
      std::cerr << "bench_compare: " << path << " is not an ftdb-bench-v1 document\n";
      return std::nullopt;
    }
    return doc;
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

struct Sample {
  std::string name;
  double wall = 0.0;
  bool ok = false;
};

std::vector<Sample> samples(const JsonValue& doc, const std::string& stat,
                            const std::string& filter) {
  std::vector<Sample> out;
  for (const JsonValue& b : doc.at("benchmarks").array) {
    Sample s;
    s.name = b.at("name").string;
    if (!filter.empty() && s.name.find(filter) == std::string::npos) continue;
    s.ok = b.at("ok").boolean;
    if (s.ok) s.wall = b.at("wall_seconds").at(stat).number;
    out.push_back(std::move(s));
  }
  return out;
}

std::string fmt_ms(double seconds) {
  std::ostringstream o;
  o.setf(std::ios::fixed);
  o.precision(3);
  o << seconds * 1e3;
  return o.str();
}

std::string fmt_ratio(double r) {
  std::ostringstream o;
  o.setf(std::ios::fixed);
  o.precision(2);
  o << r << "x";
  return o.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--stat") {
      opt.stat = next("--stat");
    } else if (arg == "--filter") {
      opt.filter = next("--filter");
    } else if (arg == "--threshold") {
      try {
        opt.threshold = std::stod(next("--threshold"));
      } catch (const std::exception&) {
        std::cerr << "--threshold expects a number\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    usage(argv[0]);
    return 2;
  }
  if (opt.stat != "min" && opt.stat != "mean" && opt.stat != "max") {
    std::cerr << "--stat must be min, mean or max\n";
    return 2;
  }
  opt.base_path = positional[0];
  opt.new_path = positional[1];

  const auto base_doc = load(opt.base_path);
  const auto new_doc = load(opt.new_path);
  if (!base_doc || !new_doc) return 2;

  // JsonValue::at throws on shape mismatches (schema-valid file missing
  // "benchmarks"/"name"/"wall_seconds"...); report them like any other
  // malformed input instead of std::terminate-ing.
  std::vector<Sample> base, fresh;
  try {
    base = samples(*base_doc, opt.stat, opt.filter);
    fresh = samples(*new_doc, opt.stat, opt.filter);
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: malformed bench document: " << e.what() << "\n";
    return 2;
  }

  std::cout << "| benchmark | base " << opt.stat << " (ms) | new " << opt.stat
            << " (ms) | speedup | status |\n";
  std::cout << "|---|---|---|---|---|\n";

  double log_sum = 0.0;
  std::size_t shared = 0;
  std::size_t regressions = 0;
  for (const Sample& b : base) {
    const auto it = std::find_if(fresh.begin(), fresh.end(),
                                 [&](const Sample& s) { return s.name == b.name; });
    if (it == fresh.end()) {
      std::cout << "| " << b.name << " | " << fmt_ms(b.wall) << " | - | - | removed |\n";
      continue;
    }
    if (!b.ok || !it->ok) {
      std::cout << "| " << b.name << " | - | - | - | "
                << (it->ok ? "base failed" : "FAILED") << " |\n";
      if (!it->ok) ++regressions;
      continue;
    }
    const double speedup = it->wall > 0.0 ? b.wall / it->wall : 0.0;
    const bool regressed = it->wall > opt.threshold * b.wall;
    if (speedup > 0.0) {
      log_sum += std::log(speedup);
      ++shared;
    }
    if (regressed) ++regressions;
    std::cout << "| " << b.name << " | " << fmt_ms(b.wall) << " | " << fmt_ms(it->wall)
              << " | " << fmt_ratio(speedup) << " | " << (regressed ? "REGRESSION" : "ok")
              << " |\n";
  }
  for (const Sample& s : fresh) {
    const bool known = std::any_of(base.begin(), base.end(),
                                   [&](const Sample& b) { return b.name == s.name; });
    if (!known) {
      std::cout << "| " << s.name << " | - | " << fmt_ms(s.wall) << " | - | new |\n";
    }
  }

  const double geomean = shared > 0 ? std::exp(log_sum / static_cast<double>(shared)) : 1.0;
  std::cout << "\ngeomean speedup over " << shared << " shared benchmarks: "
            << fmt_ratio(geomean) << " (threshold " << opt.threshold << "x, "
            << regressions << " regression" << (regressions == 1 ? "" : "s") << ")\n";
  return regressions == 0 ? 0 : 1;
}
