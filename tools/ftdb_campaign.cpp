// ftdb_campaign — Monte Carlo fault-injection campaigns from the command
// line. A campaign spec (JSON) declares a grid of topologies x spare budgets
// x fault models; the engine runs the trials across a thread pool and emits
// deterministic JSON/CSV/markdown reports (byte-identical for any --threads
// value, and across --checkpoint / --resume boundaries).
//
//   ftdb_campaign example-spec > demo.json
//   ftdb_campaign run --spec demo.json --out report.json --md report.md
//   ftdb_campaign run --spec big.json --checkpoint big.ckpt --checkpoint-every 30
//   ftdb_campaign run --spec big.json --checkpoint big.ckpt --resume   # pick up
//   ftdb_campaign validate report.json
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  ftdb_campaign run --spec FILE [options]\n"
         "  ftdb_campaign example-spec\n"
         "  ftdb_campaign validate REPORT.json\n"
         "\n"
         "run options:\n"
         "  --spec FILE             campaign spec JSON (required)\n"
         "  --out FILE              write the JSON report (default: stdout)\n"
         "  --csv FILE              also write a CSV report\n"
         "  --md FILE               also write a markdown report\n"
         "  --threads N             worker threads (0 = hardware, default 0)\n"
         "  --checkpoint FILE       write scenario-level checkpoints to FILE\n"
         "  --checkpoint-every SEC  min seconds between checkpoint writes (default 0)\n"
         "  --resume                load --checkpoint and skip completed scenarios\n"
         "  --quiet                 no per-scenario progress on stderr\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out.flush());
}

int run_command(const std::vector<std::string>& args) {
  using namespace ftdb::campaign;
  std::string spec_path;
  std::string out_path;
  std::string csv_path;
  std::string md_path;
  CampaignOptions options;
  bool quiet = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "ftdb_campaign: " << arg << " requires an argument\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--spec") {
      spec_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--md") {
      md_path = next();
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      options.checkpoint_every_seconds = std::stod(next());
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "ftdb_campaign: unknown option " << arg << "\n";
      return usage();
    }
  }
  if (spec_path.empty()) {
    std::cerr << "ftdb_campaign: run needs --spec\n";
    return usage();
  }
  const auto spec_text = read_file(spec_path);
  if (!spec_text) {
    std::cerr << "ftdb_campaign: cannot read " << spec_path << "\n";
    return 2;
  }
  if (!quiet) options.progress = &std::cerr;

  const ScenarioSpec spec = parse_scenario_spec(*spec_text);
  const CampaignResult result = run_campaign(spec, options);

  const std::string report = campaign_report_json(result);
  if (out_path.empty()) {
    std::cout << report;
  } else if (!write_file(out_path, report)) {
    std::cerr << "ftdb_campaign: cannot write " << out_path << "\n";
    return 2;
  }
  if (!csv_path.empty() && !write_file(csv_path, campaign_report_csv(result))) {
    std::cerr << "ftdb_campaign: cannot write " << csv_path << "\n";
    return 2;
  }
  if (!md_path.empty() && !write_file(md_path, campaign_report_markdown(result))) {
    std::cerr << "ftdb_campaign: cannot write " << md_path << "\n";
    return 2;
  }
  if (!quiet) {
    std::cerr << "campaign \"" << spec.name << "\": " << result.scenarios.size()
              << " scenarios x " << spec.trials << " trials done";
    if (result.resumed_scenarios > 0) {
      std::cerr << " (" << result.resumed_scenarios << " resumed from checkpoint)";
    }
    std::cerr << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "example-spec" && args.empty()) {
      std::cout << ftdb::campaign::example_spec_json();
      return 0;
    }
    if (cmd == "validate" && args.size() == 1) {
      const auto text = read_file(args[0]);
      if (!text) {
        std::cerr << "ftdb_campaign: cannot read " << args[0] << "\n";
        return 2;
      }
      const std::size_t n = ftdb::campaign::validate_campaign_report(*text);
      std::cout << args[0] << ": valid ftdb-campaign-v1 report, " << n << " scenarios\n";
      return 0;
    }
    if (cmd == "run") return run_command(args);
  } catch (const std::exception& e) {
    std::cerr << "ftdb_campaign: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
