// ftdb_campaign — Monte Carlo fault-injection campaigns from the command
// line. A campaign spec (JSON) declares a grid of topologies x spare budgets
// x fault models; the engine runs 256-trial blocks of every cell through a
// work-stealing thread pool and emits deterministic JSON/CSV/markdown
// reports (byte-identical for any --threads value, across --checkpoint /
// --resume boundaries, and across --shard / merge splits).
//
//   ftdb_campaign example-spec > demo.json
//   ftdb_campaign run --spec demo.json --out report.json --md report.md
//   ftdb_campaign run --spec big.json --checkpoint big.ckpt --checkpoint-every 30
//   ftdb_campaign run --spec big.json --checkpoint big.ckpt --resume   # pick up
//
//   # distributed: one shard per machine, then fuse the partial checkpoints
//   ftdb_campaign run --spec big.json --shard 0/2 --checkpoint s0.ckpt
//   ftdb_campaign run --spec big.json --shard 1/2 --checkpoint s1.ckpt
//   ftdb_campaign merge --spec big.json --out report.json s0.ckpt s1.ckpt
//
//   ftdb_campaign validate report.json
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  ftdb_campaign run --spec FILE [options]\n"
         "  ftdb_campaign merge --spec FILE --out FILE [--csv FILE] [--md FILE] CKPT...\n"
         "  ftdb_campaign example-spec\n"
         "  ftdb_campaign validate REPORT.json\n"
         "\n"
         "run options:\n"
         "  --spec FILE             campaign spec JSON (required)\n"
         "  --out FILE              write the JSON report (default: stdout)\n"
         "  --csv FILE              also write a CSV report\n"
         "  --md FILE               also write a markdown report\n"
         "  --threads N             worker threads (0 = hardware, default 0)\n"
         "  --checkpoint FILE       write block-granular checkpoints to FILE\n"
         "  --checkpoint-every SEC  min seconds between checkpoint writes\n"
         "                          (default 0 = after every completed block)\n"
         "  --resume                load --checkpoint and skip completed blocks\n"
         "  --shard I/N             run only the cells shard I of N owns and write a\n"
         "                          mergeable partial checkpoint (requires --checkpoint;\n"
         "                          no report is emitted — `merge` produces it)\n"
         "  --stop-after-blocks N   crash-simulation hook: checkpoint and abort (exit 3)\n"
         "                          once N trial blocks completed\n"
         "  --quiet                 no per-scenario progress on stderr\n"
         "\n"
         "merge fuses the partial checkpoints of a sharded campaign into the full\n"
         "report: fingerprints are checked, overlapping or missing cells rejected,\n"
         "and the output is byte-identical to a single-machine run of the spec.\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out.flush());
}

ftdb::campaign::ShardSpec parse_shard_arg(const std::string& s) {
  unsigned index = 0;
  unsigned count = 0;
  char tail = '\0';
  if (std::sscanf(s.c_str(), "%u/%u%c", &index, &count, &tail) != 2 || count == 0) {
    std::cerr << "ftdb_campaign: --shard wants I/N (e.g. 0/4), got \"" << s << "\"\n";
    std::exit(2);
  }
  return {index, count};
}

/// Writes the three report renderings; returns false (with a message) on any
/// I/O failure. An empty out_path sends the JSON to stdout.
bool emit_reports(const ftdb::campaign::CampaignResult& result, const std::string& out_path,
                  const std::string& csv_path, const std::string& md_path) {
  using namespace ftdb::campaign;
  const std::string report = campaign_report_json(result);
  if (out_path.empty()) {
    std::cout << report;
  } else if (!write_file(out_path, report)) {
    std::cerr << "ftdb_campaign: cannot write " << out_path << "\n";
    return false;
  }
  if (!csv_path.empty() && !write_file(csv_path, campaign_report_csv(result))) {
    std::cerr << "ftdb_campaign: cannot write " << csv_path << "\n";
    return false;
  }
  if (!md_path.empty() && !write_file(md_path, campaign_report_markdown(result))) {
    std::cerr << "ftdb_campaign: cannot write " << md_path << "\n";
    return false;
  }
  return true;
}

int run_command(const std::vector<std::string>& args) {
  using namespace ftdb::campaign;
  std::string spec_path;
  std::string out_path;
  std::string csv_path;
  std::string md_path;
  CampaignOptions options;
  bool quiet = false;
  bool sharded = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "ftdb_campaign: " << arg << " requires an argument\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--spec") {
      spec_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--md") {
      md_path = next();
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      options.checkpoint_every_seconds = std::stod(next());
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--shard") {
      options.shard = parse_shard_arg(next());
      sharded = !options.shard.whole_campaign();
    } else if (arg == "--stop-after-blocks") {
      options.stop_after_blocks = std::stoull(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "ftdb_campaign: unknown option " << arg << "\n";
      return usage();
    }
  }
  if (spec_path.empty()) {
    std::cerr << "ftdb_campaign: run needs --spec\n";
    return usage();
  }
  if (options.stop_after_blocks != 0 && options.checkpoint_path.empty()) {
    std::cerr << "ftdb_campaign: --stop-after-blocks needs --checkpoint (aborting without one "
                 "would just discard the completed blocks)\n";
    return usage();
  }
  if (sharded && options.checkpoint_path.empty()) {
    std::cerr << "ftdb_campaign: --shard needs --checkpoint (the partial checkpoint is the "
                 "shard's output; merge the shards to get the report)\n";
    return usage();
  }
  if (sharded && !(out_path.empty() && csv_path.empty() && md_path.empty())) {
    std::cerr << "ftdb_campaign: --shard does not emit reports; run `merge` on the partial "
                 "checkpoints instead\n";
    return usage();
  }
  const auto spec_text = read_file(spec_path);
  if (!spec_text) {
    std::cerr << "ftdb_campaign: cannot read " << spec_path << "\n";
    return 2;
  }
  if (!quiet) options.progress = &std::cerr;

  const ScenarioSpec spec = parse_scenario_spec(*spec_text);
  CampaignResult result;
  try {
    result = run_campaign(spec, options);
  } catch (const CampaignAborted& aborted) {
    std::cerr << "ftdb_campaign: " << aborted.what() << "; checkpoint "
              << options.checkpoint_path << " is resumable\n";
    return 3;
  }

  if (!sharded && !emit_reports(result, out_path, csv_path, md_path)) return 2;
  if (!quiet) {
    std::size_t owned = 0;
    for (const ScenarioResult& r : result.scenarios) owned += r.trials > 0 ? 1 : 0;
    std::cerr << "campaign \"" << spec.name << "\": " << owned << " scenarios x " << spec.trials
              << " trials done";
    if (sharded) std::cerr << " (shard " << options.shard.label() << ")";
    if (result.resumed_scenarios > 0 || result.resumed_blocks > 0) {
      std::cerr << " (" << result.resumed_scenarios << " scenarios / " << result.resumed_blocks
                << " blocks resumed from checkpoint)";
    }
    std::cerr << "\n";
  }
  return 0;
}

int merge_command(const std::vector<std::string>& args) {
  using namespace ftdb::campaign;
  std::string spec_path;
  std::string out_path;
  std::string csv_path;
  std::string md_path;
  std::vector<std::string> partial_paths;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "ftdb_campaign: " << arg << " requires an argument\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--spec") {
      spec_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--md") {
      md_path = next();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ftdb_campaign: unknown option " << arg << "\n";
      return usage();
    } else {
      partial_paths.push_back(arg);
    }
  }
  if (spec_path.empty() || partial_paths.empty()) {
    std::cerr << "ftdb_campaign: merge needs --spec and at least one checkpoint\n";
    return usage();
  }
  const auto spec_text = read_file(spec_path);
  if (!spec_text) {
    std::cerr << "ftdb_campaign: cannot read " << spec_path << "\n";
    return 2;
  }
  const ScenarioSpec spec = parse_scenario_spec(*spec_text);

  std::vector<Checkpoint> partials;
  partials.reserve(partial_paths.size());
  for (const std::string& path : partial_paths) {
    const auto text = read_file(path);
    if (!text) {
      std::cerr << "ftdb_campaign: cannot read " << path << "\n";
      return 2;
    }
    try {
      partials.push_back(parse_checkpoint(*text));
    } catch (const std::exception& e) {
      std::cerr << "ftdb_campaign: " << path << ": " << e.what() << "\n";
      return 1;
    }
  }
  const CampaignResult result = merge_checkpoints(spec, partials);
  if (!emit_reports(result, out_path, csv_path, md_path)) return 2;
  std::cerr << "merged " << partials.size() << " partial checkpoint(s): "
            << result.scenarios.size() << " scenarios x " << spec.trials << " trials\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "example-spec" && args.empty()) {
      std::cout << ftdb::campaign::example_spec_json();
      return 0;
    }
    if (cmd == "validate" && args.size() == 1) {
      const auto text = read_file(args[0]);
      if (!text) {
        std::cerr << "ftdb_campaign: cannot read " << args[0] << "\n";
        return 2;
      }
      const std::size_t n = ftdb::campaign::validate_campaign_report(*text);
      std::cout << args[0] << ": valid ftdb-campaign-v1 report, " << n << " scenarios\n";
      return 0;
    }
    if (cmd == "run") return run_command(args);
    if (cmd == "merge") return merge_command(args);
  } catch (const std::exception& e) {
    std::cerr << "ftdb_campaign: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
