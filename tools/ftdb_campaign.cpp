// ftdb_campaign — Monte Carlo fault-injection campaigns from the command
// line. A campaign spec (JSON) declares a grid of topologies x spare budgets
// x fault models; the engine runs 256-trial blocks of every cell through a
// work-stealing thread pool and emits deterministic JSON/CSV/markdown
// reports (byte-identical for any --threads value, across --checkpoint /
// --resume boundaries, and across --shard / merge splits).
//
//   ftdb_campaign example-spec > demo.json
//   ftdb_campaign run --spec demo.json --out report.json --md report.md
//   ftdb_campaign run --spec big.json --checkpoint big.ckpt --checkpoint-every 30
//   ftdb_campaign run --spec big.json --checkpoint big.ckpt --resume   # pick up
//
//   # distributed: one shard per machine, then fuse the partial checkpoints
//   ftdb_campaign run --spec big.json --shard 0/2 --checkpoint s0.ckpt
//   ftdb_campaign run --spec big.json --shard 1/2 --checkpoint s1.ckpt
//   ftdb_campaign merge --spec big.json --out report.json s0.ckpt s1.ckpt
//
//   # elastic: any number of workers join/leave through a shared directory;
//   # dead workers' cell leases age out and are reclaimed
//   ftdb_campaign run --spec big.json --elastic /shared/big &
//   ftdb_campaign run --spec big.json --elastic /shared/big &
//   ftdb_campaign merge --elastic /shared/big --partial       # live snapshot
//   ftdb_campaign merge --elastic /shared/big --out report.json
//
//   ftdb_campaign validate report.json
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/elastic/elastic.hpp"
#include "campaign/elastic/partial.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  ftdb_campaign run --spec FILE [options]\n"
         "  ftdb_campaign merge --spec FILE --out FILE [--csv FILE] [--md FILE] CKPT...\n"
         "  ftdb_campaign merge --elastic DIR [--partial] [--out FILE] [--csv FILE] [--md FILE]\n"
         "  ftdb_campaign example-spec [--full]\n"
         "  ftdb_campaign validate-spec SPEC.json\n"
         "  ftdb_campaign validate REPORT.json\n"
         "\n"
         "run options:\n"
         "  --spec FILE             campaign spec JSON (required)\n"
         "  --out FILE              write the JSON report (default: stdout)\n"
         "  --csv FILE              also write a CSV report\n"
         "  --md FILE               also write a markdown report\n"
         "  --threads N             worker threads (0 = hardware, default 0)\n"
         "  --checkpoint FILE       write block-granular checkpoints to FILE\n"
         "  --checkpoint-every SEC  min seconds between checkpoint writes\n"
         "                          (default 0 = after every completed block)\n"
         "  --resume                load --checkpoint and skip completed blocks\n"
         "  --shard I/N             run only the cells shard I of N owns and write a\n"
         "                          mergeable partial checkpoint (requires --checkpoint;\n"
         "                          no report is emitted — `merge` produces it)\n"
         "  --stop-after-blocks N   crash-simulation hook: checkpoint and abort (exit 3)\n"
         "                          once N trial blocks completed (elastic: the held cell\n"
         "                          lease is left behind, like a hard-killed worker)\n"
         "  --quiet                 no per-scenario progress on stderr\n"
         "\n"
         "elastic run options (workers coordinate through a shared directory):\n"
         "  --elastic DIR           join the elastic campaign at DIR: lease cells, append\n"
         "                          completed blocks to DIR/logs/<worker>.blk, reclaim\n"
         "                          dead workers' leases (no report; `merge --elastic`\n"
         "                          produces it). Excludes --checkpoint/--resume/--shard\n"
         "  --worker-id ID          stable worker name (default: <host>-<pid>)\n"
         "  --lease-ttl SEC         lease staleness horizon (default 30)\n"
         "  --no-fsync              skip fsync on block appends (tests only)\n"
         "\n"
         "merge fuses the partial checkpoints of a sharded campaign into the full\n"
         "report: fingerprints are checked, overlapping or missing cells rejected,\n"
         "and the output is byte-identical to a single-machine run of the spec.\n"
         "merge --elastic reads the campaign from DIR (spec.json + compacted.ckpt +\n"
         "block logs); --partial emits a stamped JSON coverage snapshot of a still-\n"
         "running campaign instead of requiring completion.\n";
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out.flush());
}

ftdb::campaign::ShardSpec parse_shard_arg(const std::string& s) {
  unsigned index = 0;
  unsigned count = 0;
  char tail = '\0';
  if (std::sscanf(s.c_str(), "%u/%u%c", &index, &count, &tail) != 2 || count == 0) {
    std::cerr << "ftdb_campaign: --shard wants I/N (e.g. 0/4), got \"" << s << "\"\n";
    std::exit(2);
  }
  return {index, count};
}

/// Writes the three report renderings; returns false (with a message) on any
/// I/O failure. An empty out_path sends the JSON to stdout.
bool emit_reports(const ftdb::campaign::CampaignResult& result, const std::string& out_path,
                  const std::string& csv_path, const std::string& md_path) {
  using namespace ftdb::campaign;
  const std::string report = campaign_report_json(result);
  if (out_path.empty()) {
    std::cout << report;
  } else if (!write_file(out_path, report)) {
    std::cerr << "ftdb_campaign: cannot write " << out_path << "\n";
    return false;
  }
  if (!csv_path.empty() && !write_file(csv_path, campaign_report_csv(result))) {
    std::cerr << "ftdb_campaign: cannot write " << csv_path << "\n";
    return false;
  }
  if (!md_path.empty() && !write_file(md_path, campaign_report_markdown(result))) {
    std::cerr << "ftdb_campaign: cannot write " << md_path << "\n";
    return false;
  }
  return true;
}

int run_command(const std::vector<std::string>& args) {
  using namespace ftdb::campaign;
  std::string spec_path;
  std::string out_path;
  std::string csv_path;
  std::string md_path;
  CampaignOptions options;
  ftdb::campaign::elastic::ElasticOptions elastic;
  bool quiet = false;
  bool sharded = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "ftdb_campaign: " << arg << " requires an argument\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--spec") {
      spec_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--md") {
      md_path = next();
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      options.checkpoint_every_seconds = std::stod(next());
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--shard") {
      options.shard = parse_shard_arg(next());
      sharded = !options.shard.whole_campaign();
    } else if (arg == "--stop-after-blocks") {
      options.stop_after_blocks = std::stoull(next());
    } else if (arg == "--elastic") {
      elastic.dir = next();
    } else if (arg == "--worker-id") {
      elastic.worker_id = next();
    } else if (arg == "--lease-ttl") {
      elastic.lease_ttl_seconds = std::stoull(next());
    } else if (arg == "--no-fsync") {
      elastic.fsync = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "ftdb_campaign: unknown option " << arg << "\n";
      return usage();
    }
  }
  if (spec_path.empty()) {
    std::cerr << "ftdb_campaign: run needs --spec\n";
    return usage();
  }
  if (!elastic.dir.empty()) {
    if (!options.checkpoint_path.empty() || options.resume || sharded) {
      std::cerr << "ftdb_campaign: --elastic has its own checkpointing; it excludes "
                   "--checkpoint, --resume, and --shard\n";
      return usage();
    }
    if (!(out_path.empty() && csv_path.empty() && md_path.empty())) {
      std::cerr << "ftdb_campaign: --elastic does not emit reports; run `merge --elastic` "
                   "on the shared directory instead\n";
      return usage();
    }
    const auto spec_text = read_file(spec_path);
    if (!spec_text) {
      std::cerr << "ftdb_campaign: cannot read " << spec_path << "\n";
      return 2;
    }
    using namespace ftdb::campaign::elastic;
    elastic.threads = options.threads;
    elastic.stop_after_blocks = options.stop_after_blocks;
    if (!quiet) elastic.progress = &std::cerr;
    const ScenarioSpec spec = parse_scenario_spec(*spec_text);
    try {
      const ElasticResult r = run_elastic_worker(spec, elastic);
      if (!quiet) {
        std::cerr << "elastic worker done: " << r.blocks_run << " blocks run, "
                  << r.blocks_skipped << " already durable, " << r.cells_leased
                  << " cells leased, " << r.leases_reclaimed << " stale leases reclaimed"
                  << (r.campaign_complete ? "; campaign complete\n" : "\n");
      }
    } catch (const ElasticAborted& aborted) {
      std::cerr << "ftdb_campaign: " << aborted.what() << "; durable blocks stay in "
                << elastic.dir << "\n";
      return 3;
    }
    return 0;
  }
  if (options.stop_after_blocks != 0 && options.checkpoint_path.empty()) {
    std::cerr << "ftdb_campaign: --stop-after-blocks needs --checkpoint (aborting without one "
                 "would just discard the completed blocks)\n";
    return usage();
  }
  if (sharded && options.checkpoint_path.empty()) {
    std::cerr << "ftdb_campaign: --shard needs --checkpoint (the partial checkpoint is the "
                 "shard's output; merge the shards to get the report)\n";
    return usage();
  }
  if (sharded && !(out_path.empty() && csv_path.empty() && md_path.empty())) {
    std::cerr << "ftdb_campaign: --shard does not emit reports; run `merge` on the partial "
                 "checkpoints instead\n";
    return usage();
  }
  const auto spec_text = read_file(spec_path);
  if (!spec_text) {
    std::cerr << "ftdb_campaign: cannot read " << spec_path << "\n";
    return 2;
  }
  if (!quiet) options.progress = &std::cerr;

  const ScenarioSpec spec = parse_scenario_spec(*spec_text);
  CampaignResult result;
  try {
    result = run_campaign(spec, options);
  } catch (const CampaignAborted& aborted) {
    std::cerr << "ftdb_campaign: " << aborted.what() << "; checkpoint "
              << options.checkpoint_path << " is resumable\n";
    return 3;
  }

  if (!sharded && !emit_reports(result, out_path, csv_path, md_path)) return 2;
  if (!quiet) {
    std::size_t owned = 0;
    for (const ScenarioResult& r : result.scenarios) owned += r.trials > 0 ? 1 : 0;
    std::cerr << "campaign \"" << spec.name << "\": " << owned << " scenarios x " << spec.trials
              << " trials done";
    if (sharded) std::cerr << " (shard " << options.shard.label() << ")";
    if (result.resumed_scenarios > 0 || result.resumed_blocks > 0) {
      std::cerr << " (" << result.resumed_scenarios << " scenarios / " << result.resumed_blocks
                << " blocks resumed from checkpoint)";
    }
    std::cerr << "\n";
  }
  return 0;
}

int merge_command(const std::vector<std::string>& args) {
  using namespace ftdb::campaign;
  std::string spec_path;
  std::string out_path;
  std::string csv_path;
  std::string md_path;
  std::string elastic_dir;
  bool partial_snapshot = false;
  std::vector<std::string> partial_paths;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "ftdb_campaign: " << arg << " requires an argument\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--spec") {
      spec_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--md") {
      md_path = next();
    } else if (arg == "--elastic") {
      elastic_dir = next();
    } else if (arg == "--partial") {
      partial_snapshot = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ftdb_campaign: unknown option " << arg << "\n";
      return usage();
    } else {
      partial_paths.push_back(arg);
    }
  }
  if (!elastic_dir.empty()) {
    if (!partial_paths.empty()) {
      std::cerr << "ftdb_campaign: merge --elastic reads the shared directory; it takes no "
                   "checkpoint arguments\n";
      return usage();
    }
    // The directory carries its own canonical spec; an explicit --spec just
    // has to agree with it.
    ScenarioSpec spec = elastic::load_elastic_spec(elastic_dir);
    if (!spec_path.empty()) {
      const auto spec_text = read_file(spec_path);
      if (!spec_text) {
        std::cerr << "ftdb_campaign: cannot read " << spec_path << "\n";
        return 2;
      }
      if (spec_fingerprint(parse_scenario_spec(*spec_text)) != spec_fingerprint(spec)) {
        std::cerr << "ftdb_campaign: --spec disagrees with " << elastic_dir << "/spec.json\n";
        return 1;
      }
    }
    if (partial_snapshot) {
      if (!csv_path.empty() || !md_path.empty()) {
        std::cerr << "ftdb_campaign: --partial emits the JSON snapshot only\n";
        return usage();
      }
      const std::string report = elastic::partial_elastic_report_json(spec, elastic_dir);
      if (out_path.empty()) {
        std::cout << report;
      } else if (!write_file(out_path, report)) {
        std::cerr << "ftdb_campaign: cannot write " << out_path << "\n";
        return 2;
      }
      return 0;
    }
    const CampaignResult result = elastic::merge_elastic(spec, elastic_dir);
    if (!emit_reports(result, out_path, csv_path, md_path)) return 2;
    std::cerr << "merged elastic campaign " << elastic_dir << ": " << result.scenarios.size()
              << " scenarios x " << spec.trials << " trials\n";
    return 0;
  }
  if (partial_snapshot) {
    std::cerr << "ftdb_campaign: --partial needs --elastic DIR\n";
    return usage();
  }
  if (spec_path.empty() || partial_paths.empty()) {
    std::cerr << "ftdb_campaign: merge needs --spec and at least one checkpoint\n";
    return usage();
  }
  const auto spec_text = read_file(spec_path);
  if (!spec_text) {
    std::cerr << "ftdb_campaign: cannot read " << spec_path << "\n";
    return 2;
  }
  const ScenarioSpec spec = parse_scenario_spec(*spec_text);

  std::vector<Checkpoint> partials;
  partials.reserve(partial_paths.size());
  for (const std::string& path : partial_paths) {
    const auto text = read_file(path);
    if (!text) {
      std::cerr << "ftdb_campaign: cannot read " << path << "\n";
      return 2;
    }
    try {
      partials.push_back(parse_checkpoint(*text));
    } catch (const std::exception& e) {
      std::cerr << "ftdb_campaign: " << path << ": " << e.what() << "\n";
      return 1;
    }
  }
  const CampaignResult result = merge_checkpoints(spec, partials);
  if (!emit_reports(result, out_path, csv_path, md_path)) return 2;
  std::cerr << "merged " << partials.size() << " partial checkpoint(s): "
            << result.scenarios.size() << " scenarios x " << spec.trials << " trials\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "example-spec" && args.empty()) {
      std::cout << ftdb::campaign::example_spec_json();
      return 0;
    }
    if (cmd == "example-spec" && args.size() == 1 && args[0] == "--full") {
      // The kitchen-sink spec: every family, fault model, metric and traffic
      // knob (see docs/SCENARIOS.md). CI round-trips it through validate-spec.
      std::cout << ftdb::campaign::full_example_spec_json();
      return 0;
    }
    if (cmd == "validate-spec" && args.size() == 1) {
      const auto text = read_file(args[0]);
      if (!text) {
        std::cerr << "ftdb_campaign: cannot read " << args[0] << "\n";
        return 2;
      }
      using namespace ftdb::campaign;
      const ScenarioSpec spec = parse_scenario_spec(*text);
      // The canonical form must be a fixed point: parse -> write -> parse ->
      // write yields the same bytes (and hence the same fingerprint), or
      // checkpoints and sharded merges could never agree on the stamp.
      const std::string canon = scenario_spec_to_json(spec);
      const ScenarioSpec again = parse_scenario_spec(canon);
      if (scenario_spec_to_json(again) != canon) {
        std::cerr << "ftdb_campaign: " << args[0]
                  << ": canonical spec form is not a round-trip fixed point\n";
        return 1;
      }
      const std::size_t cells = expand_grid(spec).size();
      char fp[32];
      std::snprintf(fp, sizeof fp, "%016llx",
                    static_cast<unsigned long long>(spec_fingerprint(spec)));
      std::cout << args[0] << ": valid campaign spec \"" << spec.name << "\", " << cells
                << " cells x " << spec.trials << " trials, fingerprint " << fp << "\n";
      return 0;
    }
    if (cmd == "validate" && args.size() == 1) {
      const auto text = read_file(args[0]);
      if (!text) {
        std::cerr << "ftdb_campaign: cannot read " << args[0] << "\n";
        return 2;
      }
      const std::size_t n = ftdb::campaign::validate_campaign_report(*text);
      std::cout << args[0] << ": valid ftdb-campaign-v1 report, " << n << " scenarios\n";
      return 0;
    }
    if (cmd == "run") return run_command(args);
    if (cmd == "merge") return merge_command(args);
  } catch (const std::exception& e) {
    std::cerr << "ftdb_campaign: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
