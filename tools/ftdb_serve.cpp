// ftdb_serve — stdin-driven front end for the always-on reconfiguration
// service (serve/service.hpp). One process serves one machine; fault/repair
// events arrive as commands, routing queries are answered from the current
// epoch, and (with --journal) every mutation is write-ahead journaled so a
// killed process resumes exactly where it died.
//
//   ftdb_serve [--family debruijn|shuffle_exchange] [--base M] [--digits H]
//              [--spares K] [--journal PATH] [--no-fsync]
//
// Commands (one per line on stdin; responses are single lines on stdout):
//   fault N            node fault
//   fault link U V     link fault (U's side is retired)
//   fault bus N        bus fault (driver N is retired)
//   repair N           return node N to service
//   route FROM TO      FT-surface physical path (logical ids in, physical out)
//   bare-route FROM TO degraded bare-machine path ("unreachable" if cut off)
//   stats              one-line service stats
//   hash               deterministic state hash (replay/recovery comparisons)
//   dump               retired set + embedding
//   checkpoint         compact the journal
//   crash              exit immediately without cleanup (recovery testing)
//   quit               exit cleanly
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace {

using ftdb::FaultEvent;
using ftdb::FaultKind;
using ftdb::NodeId;
using ftdb::serve::Family;
using ftdb::serve::MutationStatus;
using ftdb::serve::ReconfigurationService;
using ftdb::serve::ServeConfig;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--family debruijn|shuffle_exchange] [--base M] [--digits H]"
               " [--spares K] [--journal PATH] [--no-fsync]\n";
  return 2;
}

void print_path(const std::vector<NodeId>& path) {
  if (path.empty()) {
    std::cout << "unreachable\n";
    return;
  }
  std::cout << "path hops=" << path.size() - 1;
  for (const NodeId node : path) std::cout << ' ' << node;
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  ServeConfig config;
  config.digits = 4;
  config.spares = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ftdb_serve: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--family") {
      const std::string family = next();
      if (family == "debruijn") {
        config.family = Family::kDeBruijn;
      } else if (family == "shuffle_exchange") {
        config.family = Family::kShuffleExchange;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--base") {
      config.base = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--digits") {
      config.digits = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--spares") {
      config.spares = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--journal") {
      config.journal_path = next();
    } else if (arg == "--no-fsync") {
      config.fsync_journal = false;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    ReconfigurationService service(config);
    auto reader = service.reader();
    std::cout << "serving " << service.num_logical_nodes() << " logical on "
              << service.num_physical_nodes() << " physical nodes, "
              << service.replayed_events() << " journaled events replayed\n";

    std::string line;
    while (std::getline(std::cin, line)) {
      std::istringstream in(line);
      std::string cmd;
      if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;
      try {
        if (cmd == "quit") {
          break;
        } else if (cmd == "crash") {
          ::_exit(3);  // no destructors, no flush: simulates a hard crash
        } else if (cmd == "fault") {
          FaultEvent event;
          std::string sub;
          in >> sub;
          if (sub == "link") {
            event.kind = FaultKind::kLink;
            in >> event.node >> event.other;
          } else if (sub == "bus") {
            event.kind = FaultKind::kBus;
            in >> event.node;
          } else {
            event.kind = FaultKind::kNode;
            event.node = static_cast<NodeId>(std::strtoul(sub.c_str(), nullptr, 10));
          }
          std::cout << mutation_status_name(service.fault(event)) << '\n';
        } else if (cmd == "repair") {
          NodeId node = 0;
          in >> node;
          std::cout << mutation_status_name(service.repair(node)) << '\n';
        } else if (cmd == "route" || cmd == "bare-route") {
          NodeId from = 0, to = 0;
          in >> from >> to;
          print_path(cmd == "route" ? reader.route(from, to) : reader.bare_route(from, to));
        } else if (cmd == "stats") {
          const auto s = service.stats();
          std::cout << "epoch=" << s.epoch << " faults=" << s.faults_outstanding << "/"
                    << s.spare_budget << " degraded=" << (s.degraded ? 1 : 0)
                    << " exceptions=" << s.bare.exception_entries
                    << " journal_records=" << s.journal_records
                    << " journal_bytes=" << s.journal_bytes
                    << " epochs_live=" << s.epochs_live << '\n';
        } else if (cmd == "hash") {
          std::cout << "hash " << std::hex << service.state_hash() << std::dec << '\n';
        } else if (cmd == "dump") {
          const auto epoch = service.snapshot();
          std::cout << "retired";
          for (const NodeId node : epoch->retired) std::cout << ' ' << node;
          std::cout << "\nphi";
          for (const NodeId node : epoch->phi) std::cout << ' ' << node;
          std::cout << '\n';
        } else if (cmd == "checkpoint") {
          service.checkpoint();
          std::cout << "checkpointed journal_bytes=" << service.stats().journal_bytes << '\n';
        } else {
          std::cout << "error unknown command: " << cmd << '\n';
        }
      } catch (const std::exception& e) {
        std::cout << "error " << e.what() << '\n';
      }
      std::cout.flush();
    }
  } catch (const std::exception& e) {
    std::cerr << "ftdb_serve: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
