// ftdbtool — command-line front end for the library, for downstream users who
// want the graphs and the reconfiguration without writing C++.
//
//   ftdbtool gen  <m> <h>                 edge list of B_{m,h}
//   ftdbtool ft   <m> <h> <k>             edge list of B^k_{m,h}
//   ftdbtool se   <h>                     edge list of SE_h
//   ftdbtool dot  <m> <h> <k>             Graphviz DOT of B^k_{m,h} (k=0 -> target)
//   ftdbtool reconf <m> <h> <k> f1 f2 ..  logical->physical map after the faults
//   ftdbtool verify <m> <h> <k> [trials]  Monte Carlo tolerance check (default 1000)
//   ftdbtool seq  <m> <n>                 a de Bruijn sequence B(m, n)
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ft/ft_debruijn.hpp"
#include "ft/reconfigure.hpp"
#include "ft/tolerance.hpp"
#include "graph/io.hpp"
#include "topology/debruijn.hpp"
#include "topology/debruijn_sequence.hpp"
#include "topology/shuffle_exchange.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  ftdbtool gen  <m> <h>\n"
               "  ftdbtool ft   <m> <h> <k>\n"
               "  ftdbtool se   <h>\n"
               "  ftdbtool dot  <m> <h> <k>\n"
               "  ftdbtool reconf <m> <h> <k> <fault>...\n"
               "  ftdbtool verify <m> <h> <k> [trials]\n"
               "  ftdbtool seq  <m> <n>\n";
  return 2;
}

std::uint64_t arg_u64(char** argv, int i) { return std::strtoull(argv[i], nullptr, 10); }

}  // namespace

int main(int argc, char** argv) {
  using namespace ftdb;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen" && argc == 4) {
      std::cout << to_edge_list(debruijn_graph(
          {.base = arg_u64(argv, 2), .digits = static_cast<unsigned>(arg_u64(argv, 3))}));
      return 0;
    }
    if (cmd == "ft" && argc == 5) {
      std::cout << to_edge_list(ft_debruijn_graph({.base = arg_u64(argv, 2),
                                                   .digits = static_cast<unsigned>(arg_u64(argv, 3)),
                                                   .spares = static_cast<unsigned>(arg_u64(argv, 4))}));
      return 0;
    }
    if (cmd == "se" && argc == 3) {
      std::cout << to_edge_list(shuffle_exchange_graph(static_cast<unsigned>(arg_u64(argv, 2))));
      return 0;
    }
    if (cmd == "dot" && argc == 5) {
      const Graph g = ft_debruijn_graph({.base = arg_u64(argv, 2),
                                         .digits = static_cast<unsigned>(arg_u64(argv, 3)),
                                         .spares = static_cast<unsigned>(arg_u64(argv, 4))});
      DotOptions opts;
      opts.graph_name = "ftdb";
      std::cout << to_dot(g, opts);
      return 0;
    }
    if (cmd == "reconf" && argc >= 6) {
      const std::uint64_t m = arg_u64(argv, 2);
      const auto h = static_cast<unsigned>(arg_u64(argv, 3));
      const auto k = static_cast<unsigned>(arg_u64(argv, 4));
      const Graph target = debruijn_graph({.base = m, .digits = h});
      const Graph ft = ft_debruijn_graph({.base = m, .digits = h, .spares = k});
      std::vector<NodeId> faulty;
      for (int i = 5; i < argc; ++i) faulty.push_back(static_cast<NodeId>(arg_u64(argv, i)));
      if (faulty.size() > k) {
        std::cerr << "error: " << faulty.size() << " faults exceed the budget k=" << k << "\n";
        return 1;
      }
      const FaultSet faults(ft.num_nodes(), faulty);
      const auto phi = monotone_embedding(faults);
      const bool ok = monotone_embedding_survives(target, ft, faults);
      for (std::size_t x = 0; x < target.num_nodes(); ++x) {
        std::cout << x << " -> " << phi[x] << "\n";
      }
      std::cout << "# all target edges survive: " << (ok ? "yes" : "NO") << "\n";
      return ok ? 0 : 1;
    }
    if (cmd == "verify" && (argc == 5 || argc == 6)) {
      const std::uint64_t m = arg_u64(argv, 2);
      const auto h = static_cast<unsigned>(arg_u64(argv, 3));
      const auto k = static_cast<unsigned>(arg_u64(argv, 4));
      const std::uint64_t trials = argc == 6 ? arg_u64(argv, 5) : 1000;
      const Graph target = debruijn_graph({.base = m, .digits = h});
      const Graph ft = ft_debruijn_graph({.base = m, .digits = h, .spares = k});
      const auto report = check_tolerance_monte_carlo(target, ft, k, trials, 1);
      std::cout << "checked " << report.fault_sets_checked << " random fault sets of size " << k
                << ": " << (report.tolerant ? "all tolerated" : "VIOLATION FOUND") << "\n";
      return report.tolerant ? 0 : 1;
    }
    if (cmd == "seq" && argc == 4) {
      const auto seq =
          debruijn_sequence(arg_u64(argv, 2), static_cast<unsigned>(arg_u64(argv, 3)));
      for (std::size_t i = 0; i < seq.size(); ++i) {
        std::cout << seq[i] << (i + 1 < seq.size() ? " " : "\n");
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
